// Failure-injection tests: the library must fail loudly and cleanly —
// typed exceptions, no partial state, no crashes — when resources run
// out or inputs are hostile.

#include <gtest/gtest.h>

#include <sstream>

#include "gpusim/trace.hpp"
#include "parti/parti_executor.hpp"
#include "scalfrag/autotune.hpp"
#include "scalfrag/cpd.hpp"
#include "scalfrag/pipeline.hpp"
#include "tensor/generator.hpp"
#include "tensor/io_tns.hpp"

namespace scalfrag {
namespace {

FactorList random_factors(const CooTensor& t, index_t rank,
                          std::uint64_t seed) {
  Rng rng(seed);
  FactorList f;
  for (order_t m = 0; m < t.order(); ++m) {
    DenseMatrix a(t.dim(m), rank);
    a.randomize(rng);
    f.push_back(std::move(a));
  }
  return f;
}

TEST(FailureInjection, PipelineOomWhenEvenOneSegmentCannotFit) {
  gpusim::DeviceSpec tiny = gpusim::DeviceSpec::rtx3090();
  tiny.global_mem_bytes = 4 * 1024;  // 4 KB device
  gpusim::SimDevice dev(tiny);

  CooTensor t = make_frostt_tensor("nips", 1.0 / 4096, 401);
  const auto f = random_factors(t, 8, 402);
  PipelineExecutor exec(dev);
  ExecConfig opt;
  opt.num_segments = 64;
  EXPECT_THROW(exec.run(t, f, 0, opt), DeviceOutOfMemory);
  // All partial allocations must have been released (RAII).
  EXPECT_EQ(dev.allocator().used(), 0u);
}

TEST(FailureInjection, DeviceUsableAfterOom) {
  gpusim::DeviceSpec small = gpusim::DeviceSpec::rtx3090();
  small.global_mem_bytes = 1 << 20;
  gpusim::SimDevice dev(small);

  CooTensor big = make_frostt_tensor("nell-2", 1.0 / 512, 403);
  CooTensor ok = make_frostt_tensor("nips", 1.0 / 4096, 404);
  const auto fb = random_factors(big, 8, 405);
  const auto fo = random_factors(ok, 8, 406);

  EXPECT_THROW(parti::run_mttkrp(dev, big, fb, 0), DeviceOutOfMemory);
  EXPECT_EQ(dev.allocator().used(), 0u);
  // A subsequent, fitting run succeeds on the same device.
  const auto res = parti::run_mttkrp(dev, ok, fo, 0);
  EXPECT_LT(DenseMatrix::max_abs_diff(res.output, mttkrp_coo_ref(ok, fo, 0)),
            2e-3);
}

TEST(FailureInjection, MalformedTnsInputsThrowNotCrash) {
  const char* cases[] = {
      "1 2\n3\n",                      // arity change mid-file
      "1 -2 1.0\n",                    // negative index
      "a b c\n",                       // non-numeric garbage
      "1 1 nan\n# then nothing\n x",   // trailing junk
      "999999999999999999999 1 1.0\n"  // absurd index (fits double; ok)
  };
  for (const char* text : cases) {
    std::istringstream in(text);
    try {
      const CooTensor t = read_tns(in);
      // Some inputs are legitimately parseable; they must validate.
      t.validate();
    } catch (const Error&) {
      // Typed rejection is the expected path.
    }
  }
}

TEST(FailureInjection, CpdErrorsPropagateWithoutCorruption) {
  gpusim::DeviceSpec tiny = gpusim::DeviceSpec::rtx3090();
  tiny.global_mem_bytes = 1 << 12;
  gpusim::SimDevice dev(tiny);
  const CooTensor t = make_frostt_tensor("nips", 1.0 / 4096, 407);
  EXPECT_THROW(cpd_als(t, ExecConfig{}.backend("parti").rank(8), &dev),
               DeviceOutOfMemory);
  EXPECT_EQ(dev.allocator().used(), 0u);
}

TEST(FailureInjection, EmptyGanttAndTraceAreWellFormed) {
  gpusim::SimDevice dev(gpusim::DeviceSpec::rtx3090());
  EXPECT_TRUE(gpusim::ascii_gantt(dev).empty());
  std::ostringstream out;
  gpusim::write_chrome_trace(out, dev);
  EXPECT_EQ(out.str(), "[\n\n]\n");
  EXPECT_THROW(gpusim::ascii_gantt(dev, 0), Error);
}

TEST(FailureInjection, SelectorRejectsImpossibleRank) {
  // A rank whose shared-memory tile exceeds the per-block cap at every
  // block size leaves no feasible candidate.
  const auto spec = gpusim::DeviceSpec::rtx3090();
  auto model = make_model(ModelKind::DecisionTree);
  ml::Dataset d(TensorFeatures::kVectorSize + 4);
  std::vector<double> row(d.dim(), 0.0);
  d.add(std::span<const double>(row.data(), row.size()), 1.0);
  model->fit(d);
  const LaunchSelector sel(spec, std::move(model), /*rank=*/4096);
  CooTensor t({8, 8});
  t.push({0, 0}, 1.0f);
  EXPECT_THROW(sel.select(TensorFeatures::extract(t, 0)), Error);
}

}  // namespace
}  // namespace scalfrag
