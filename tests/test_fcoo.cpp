// F-COO format tests: flag construction, storage accounting, and the
// atomic-free segmented-reduction MTTKRP.

#include <gtest/gtest.h>

#include "tensor/fcoo.hpp"
#include "tensor/generator.hpp"

namespace scalfrag {
namespace {

FactorList random_factors(const CooTensor& t, index_t rank,
                          std::uint64_t seed) {
  Rng rng(seed);
  FactorList f;
  for (order_t m = 0; m < t.order(); ++m) {
    DenseMatrix a(t.dim(m), rank);
    a.randomize(rng);
    f.push_back(std::move(a));
  }
  return f;
}

TEST(Fcoo, FlagsOnHandBuiltTensor) {
  // Mode-0 sorted entry rows: 0,0,1,3 → bf = 1,0,1,1; segments {0,1,3}.
  CooTensor t({4, 4});
  t.push({0, 0}, 1.0f);
  t.push({0, 2}, 2.0f);
  t.push({1, 1}, 3.0f);
  t.push({3, 0}, 4.0f);
  const FcooTensor f = FcooTensor::build(t, 0, /*partition_size=*/2);

  EXPECT_EQ(f.nnz(), 4u);
  EXPECT_EQ(f.num_segments(), 3u);
  EXPECT_TRUE(f.bit_flag(0));
  EXPECT_FALSE(f.bit_flag(1));
  EXPECT_TRUE(f.bit_flag(2));
  EXPECT_TRUE(f.bit_flag(3));
  EXPECT_EQ(f.out_row(0), 0u);
  EXPECT_EQ(f.out_row(1), 1u);
  EXPECT_EQ(f.out_row(2), 3u);
  // Partition 0 starts at e=0 (bf set → fresh segment → sf false);
  // partition 1 starts at e=2 (bf set → sf false).
  EXPECT_FALSE(f.start_flag(0));
  EXPECT_FALSE(f.start_flag(1));
}

TEST(Fcoo, StartFlagMarksContinuedSegments) {
  // Three entries of one row with partition size 2: partition 1 begins
  // mid-segment → sf set.
  CooTensor t({2, 8});
  t.push({0, 0}, 1.0f);
  t.push({0, 1}, 1.0f);
  t.push({0, 2}, 1.0f);
  const FcooTensor f = FcooTensor::build(t, 0, 2);
  EXPECT_FALSE(f.start_flag(0));
  EXPECT_TRUE(f.start_flag(1));
}

TEST(Fcoo, DoesNotStoreTargetModeIndices) {
  CooTensor t({4, 4, 4});
  t.push({1, 2, 3}, 1.0f);
  const FcooTensor f = FcooTensor::build(t, 1);
  EXPECT_EQ(f.index(0, 0), 1u);
  EXPECT_EQ(f.index(2, 0), 3u);
  EXPECT_THROW(f.index(1, 0), Error);  // the compressed mode
}

TEST(Fcoo, SavesIndexStorageOnLongSlices) {
  // Few slices, many nnz → the per-entry mode-0 index array (4 B/nnz)
  // collapses to bit flags + a handful of out_rows.
  GeneratorConfig g{
      .dims = {16, 512, 512}, .nnz = 20000, .skew = {}, .seed = 205};
  const CooTensor t = generate_coo(g);
  const FcooTensor f = FcooTensor::build(t, 0);
  EXPECT_LT(f.bytes(), t.bytes());
  // Savings ≈ one index array minus flag bits.
  const std::size_t expected =
      t.bytes() - t.nnz() * sizeof(index_t) + t.nnz() / 8 + 64;
  EXPECT_NEAR(static_cast<double>(f.bytes()),
              static_cast<double>(expected), 200.0);
}

TEST(Fcoo, BuildsFromUnsortedInput) {
  CooTensor t({4, 4});
  t.push({3, 0}, 4.0f);
  t.push({0, 0}, 1.0f);
  const FcooTensor f = FcooTensor::build(t, 0);
  EXPECT_EQ(f.out_row(0), 0u);
  EXPECT_EQ(f.out_row(1), 3u);
  // Original untouched.
  EXPECT_EQ(t.index(0, 0), 3u);
}

TEST(Fcoo, EmptyTensorMttkrpIsZero) {
  CooTensor t({4, 4});
  const FcooTensor f = FcooTensor::build(t, 0);
  FactorList factors;
  factors.emplace_back(4, 4);
  factors.emplace_back(4, 4);
  DenseMatrix out(4, 4, 7.0f);
  f.mttkrp(factors, out);
  EXPECT_FLOAT_EQ(out(0, 0), 0.0f);  // zeroed, nothing accumulated
}

TEST(Fcoo, RejectsBadArguments) {
  CooTensor t({4, 4});
  EXPECT_THROW(FcooTensor::build(t, 2), Error);  // mode out of range
  EXPECT_THROW(FcooTensor::build(t, 0, 0), Error);  // zero partition
}

// Property: F-COO MTTKRP == COO reference across tensors, modes and
// partition sizes (partition size must not affect results at all).
class FcooMttkrp
    : public ::testing::TestWithParam<std::tuple<const char*, int, int>> {};

TEST_P(FcooMttkrp, MatchesReference) {
  const auto [name, mode, part] = GetParam();
  const CooTensor t = make_frostt_tensor(name, 1.0 / 4096, 206);
  if (static_cast<order_t>(mode) >= t.order()) GTEST_SKIP();
  const auto f = random_factors(t, 8, 207);
  const auto expect = mttkrp_coo_ref(t, f, static_cast<order_t>(mode));
  const FcooTensor fc = FcooTensor::build(t, static_cast<order_t>(mode),
                                          static_cast<nnz_t>(part));
  DenseMatrix got(t.dim(static_cast<order_t>(mode)), 8);
  fc.mttkrp(f, got);
  EXPECT_LT(DenseMatrix::max_abs_diff(expect, got), 2e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FcooMttkrp,
    ::testing::Combine(::testing::Values("uber", "enron", "vast"),
                       ::testing::Values(0, 2, 3),
                       ::testing::Values(1, 64, 4096)));

}  // namespace
}  // namespace scalfrag
