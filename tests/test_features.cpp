// Feature-extraction tests: slice/fiber censuses against hand counts,
// ratio definitions, and vectorization.

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/features.hpp"
#include "tensor/generator.hpp"

namespace scalfrag {
namespace {

TEST(Features, HandComputedCensus) {
  // Slices (mode 0): {0: 3 nnz, 2: 1 nnz} → 2 slices, max 3.
  // Fibers (mode 0, next mode 1): (0,0)x2, (0,1), (2,3) → 3 fibers.
  CooTensor t({3, 4, 2});
  t.push({0, 0, 0}, 1.0f);
  t.push({0, 0, 1}, 1.0f);
  t.push({0, 1, 0}, 1.0f);
  t.push({2, 3, 1}, 1.0f);
  const auto f = TensorFeatures::extract(t, 0);

  EXPECT_EQ(f.order, 3);
  EXPECT_EQ(f.nnz, 4u);
  EXPECT_EQ(f.mode_dim, 3u);
  EXPECT_EQ(f.num_slices, 2u);
  EXPECT_EQ(f.num_fibers, 3u);
  EXPECT_EQ(f.max_nnz_per_slice, 3u);
  EXPECT_DOUBLE_EQ(f.slice_ratio, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(f.fiber_ratio, 3.0 / 4.0);
  EXPECT_DOUBLE_EQ(f.avg_nnz_per_slice, 2.0);
  EXPECT_DOUBLE_EQ(f.avg_nnz_per_fiber, 4.0 / 3.0);
  EXPECT_DOUBLE_EQ(f.density, 4.0 / 24.0);
  // Slice sizes {3,1}: mean 2, stdev 1 → cv 0.5.
  EXPECT_NEAR(f.cv_nnz_per_slice, 0.5, 1e-12);
}

TEST(Features, ModeChangesCensus) {
  CooTensor t({3, 4, 2});
  t.push({0, 0, 0}, 1.0f);
  t.push({0, 0, 1}, 1.0f);
  t.push({0, 1, 0}, 1.0f);
  t.push({2, 3, 1}, 1.0f);
  const auto f1 = TensorFeatures::extract(t, 1);
  // Mode-1 slices: {0: 2, 1: 1, 3: 1} → 3 slices.
  EXPECT_EQ(f1.num_slices, 3u);
  EXPECT_EQ(f1.mode_dim, 4u);
  EXPECT_EQ(f1.mode, 1);
}

TEST(Features, DiagonalTensorHasUnitFibers) {
  CooTensor t({8, 8, 8});
  for (index_t i = 0; i < 8; ++i) t.push({i, i, i}, 1.0f);
  const auto f = TensorFeatures::extract(t, 0);
  EXPECT_EQ(f.num_slices, 8u);
  EXPECT_EQ(f.num_fibers, 8u);
  EXPECT_DOUBLE_EQ(f.fiber_ratio, 1.0);
  EXPECT_DOUBLE_EQ(f.slice_ratio, 1.0);
  EXPECT_EQ(f.max_nnz_per_slice, 1u);
  EXPECT_DOUBLE_EQ(f.cv_nnz_per_slice, 0.0);
}

TEST(Features, SingleDenseSliceExtreme) {
  CooTensor t({4, 16, 1});
  for (index_t j = 0; j < 16; ++j) t.push({1, j, 0}, 1.0f);
  const auto f = TensorFeatures::extract(t, 0);
  EXPECT_EQ(f.num_slices, 1u);
  EXPECT_EQ(f.max_nnz_per_slice, 16u);
  EXPECT_DOUBLE_EQ(f.slice_ratio, 0.25);
  EXPECT_DOUBLE_EQ(f.avg_nnz_per_slice, 16.0);
}

TEST(Features, EmptyTensorIsAllZero) {
  CooTensor t({4, 4});
  const auto f = TensorFeatures::extract(t, 0);
  EXPECT_EQ(f.nnz, 0u);
  EXPECT_EQ(f.num_slices, 0u);
  EXPECT_EQ(f.num_fibers, 0u);
}

TEST(Features, WorksOnUnsortedInputWithoutMutating) {
  CooTensor t({4, 4});
  t.push({3, 0}, 1.0f);
  t.push({0, 1}, 1.0f);
  t.push({3, 2}, 1.0f);
  const auto f = TensorFeatures::extract(t, 0);
  EXPECT_EQ(f.num_slices, 2u);
  EXPECT_EQ(f.max_nnz_per_slice, 2u);
  // Input order untouched.
  EXPECT_EQ(t.index(0, 0), 3u);
}

TEST(Features, VectorHasDocumentedLayout) {
  CooTensor t({8, 8, 8});
  for (index_t i = 0; i < 8; ++i) t.push({i, i, i}, 1.0f);
  const auto f = TensorFeatures::extract(t, 0);
  const auto v = f.to_vector();
  ASSERT_EQ(v.size(), TensorFeatures::kVectorSize);
  ASSERT_EQ(TensorFeatures::names().size(), TensorFeatures::kVectorSize);
  EXPECT_DOUBLE_EQ(v[0], 3.0);                       // order
  EXPECT_DOUBLE_EQ(v[5], f.slice_ratio);
  EXPECT_DOUBLE_EQ(v[6], f.fiber_ratio);
  EXPECT_NEAR(v[1], std::log2(9.0), 1e-12);          // log2(1+nnz)
}

TEST(Features, SkewIncreasesImbalance) {
  GeneratorConfig uniform{.dims = {256, 256, 256},
                          .nnz = 20000,
                          .skew = {1.0, 1.0, 1.0},
                          .seed = 11};
  GeneratorConfig skewed = uniform;
  skewed.skew = {3.0, 3.0, 3.0};
  const auto fu = TensorFeatures::extract(generate_coo(uniform), 0);
  const auto fs = TensorFeatures::extract(generate_coo(skewed), 0);
  EXPECT_GT(fs.cv_nnz_per_slice, fu.cv_nnz_per_slice);
  EXPECT_GT(fs.max_nnz_per_slice, fu.max_nnz_per_slice);
}

TEST(Features, Order2FiberEqualsEntryRuns) {
  CooTensor t({4, 4});
  t.push({0, 0}, 1.0f);
  t.push({0, 1}, 1.0f);
  t.push({1, 1}, 1.0f);
  const auto f = TensorFeatures::extract(t, 0);
  // For a matrix, each (i, j) pair is its own "fiber".
  EXPECT_EQ(f.num_fibers, 3u);
}

}  // namespace
}  // namespace scalfrag
