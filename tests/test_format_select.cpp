// Format-selection tests (SpTFS-style): measurement plumbing, training,
// and sane predictions. Time measurements are kept loose — this is the
// one module that uses wall time.

#include <gtest/gtest.h>

#include "scalfrag/format_select.hpp"
#include "tensor/generator.hpp"

namespace scalfrag {
namespace {

TEST(FormatSelect, Names) {
  EXPECT_STREQ(sparse_format_name(SparseFormat::Coo), "COO");
  EXPECT_STREQ(sparse_format_name(SparseFormat::Csf), "CSF");
  EXPECT_STREQ(sparse_format_name(SparseFormat::HiCoo), "HiCOO");
  EXPECT_STREQ(sparse_format_name(SparseFormat::FCoo), "F-COO");
  EXPECT_EQ(kAllFormats.size(), 4u);
}

TEST(FormatSelect, MeasurementCoversAllFormatsAndPicksMin) {
  const CooTensor t = make_frostt_tensor("nips", 1.0 / 4096, 231);
  const FormatTiming timing = measure_formats(t, 0, 8, 2);
  for (SparseFormat f : kAllFormats) {
    EXPECT_GT(timing.ms[static_cast<std::size_t>(f)], 0.0);
    EXPECT_GE(timing.ms[static_cast<std::size_t>(f)], timing.best_ms());
  }
}

TEST(FormatSelect, MeasurementValidation) {
  const CooTensor t = make_frostt_tensor("nips", 1.0 / 8192, 232);
  EXPECT_THROW(measure_formats(t, 0, 8, 0), Error);
}

TEST(FormatSelect, PredictBeforeTrainThrows) {
  FormatSelector sel;
  const CooTensor t = make_frostt_tensor("nips", 1.0 / 8192, 233);
  const auto feat = TensorFeatures::extract(t, 0);
  EXPECT_FALSE(sel.trained());
  EXPECT_THROW(sel.predict(feat), Error);
}

TEST(FormatSelect, TrainsAndPredictsConsistently) {
  FormatSelectorConfig cfg;
  cfg.corpus_size = 8;  // keep the measuring loop short in CI
  cfg.reps = 1;
  cfg.rank = 8;
  FormatSelector sel(cfg);
  const double secs = sel.train();
  EXPECT_TRUE(sel.trained());
  EXPECT_LT(secs, 60.0);

  const CooTensor t = make_frostt_tensor("uber", 1.0 / 4096, 234);
  const auto feat = TensorFeatures::extract(t, 0);
  const SparseFormat a = sel.predict(feat);
  const SparseFormat b = sel.predict(feat);
  EXPECT_EQ(a, b);
  // The predicted format's predicted time must be the arg-min.
  for (SparseFormat f : kAllFormats) {
    EXPECT_GE(sel.predict_ms(feat, f) + 1e-12, sel.predict_ms(feat, a));
  }
}

}  // namespace
}  // namespace scalfrag
