// Joint (format × launch) selection and the named backend registry:
// deterministic predictions, graceful degradation when the model file
// is absent, single-file model persistence, typed rejection of unknown
// backend names, and end-to-end dispatch through every built-in.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "gpusim/engine.hpp"
#include "scalfrag/backend_registry.hpp"
#include "scalfrag/format_select.hpp"
#include "tensor/generator.hpp"

namespace scalfrag {
namespace {

FactorList random_factors(const CooTensor& t, index_t rank,
                          std::uint64_t seed) {
  Rng rng(seed);
  FactorList f;
  for (order_t m = 0; m < t.order(); ++m) {
    DenseMatrix a(t.dim(m), rank);
    a.randomize(rng);
    f.push_back(std::move(a));
  }
  return f;
}

/// Long clustered fibers: the tensor shape the CSF heuristic must pick.
CooTensor fibrous_tensor() {
  CooTensor t({8, 8, 256});
  for (index_t i = 0; i < 8; ++i) {
    for (index_t k = 0; k < 128; ++k) {
      t.push({i, static_cast<index_t>(i % 4), k}, 1.0f);
    }
  }
  return t;
}

bool same_choice(const JointChoice& a, const JointChoice& b) {
  return a.format == b.format && a.backend == b.backend &&
         a.variant == b.variant && a.has_launch == b.has_launch &&
         a.from_model == b.from_model;
}

// --- heuristic ---------------------------------------------------------

TEST(JointSelect, HeuristicIsDeterministic) {
  const CooTensor t = fibrous_tensor();
  const auto feat = TensorFeatures::extract(t, 0);
  const JointChoice a = heuristic_joint_choice(feat, 16);
  const JointChoice b = heuristic_joint_choice(feat, 16);
  EXPECT_TRUE(same_choice(a, b));
  EXPECT_FALSE(a.from_model);
  // Whatever it picks must be runnable by name.
  EXPECT_TRUE(BackendRegistry::instance().contains(a.backend));
}

TEST(JointSelect, HeuristicPrefersCsfOnFibrousTensors) {
  const CooTensor t = fibrous_tensor();
  const auto feat = TensorFeatures::extract(t, 0);
  const JointChoice c = heuristic_joint_choice(feat, 16);
  EXPECT_EQ(c.format, SparseFormat::Csf);
  EXPECT_EQ(c.backend.rfind("csf_tiled", 0), 0u) << c.backend;
}

TEST(JointSelect, HeuristicFallsBackToCooForMatrices) {
  GeneratorConfig g;
  g.dims = {64, 64};
  g.skew = {1.0, 1.0};
  g.nnz = 500;
  g.seed = 7;
  const CooTensor t = generate_coo(g);
  const auto feat = TensorFeatures::extract(t, 0);
  const JointChoice c = heuristic_joint_choice(feat, 16);
  EXPECT_EQ(c.format, SparseFormat::Coo);
  EXPECT_EQ(c.backend, "coo");
}

// --- model degradation + persistence -----------------------------------

TEST(JointSelect, MissingModelFileDegradesToHeuristic) {
  const JointSelector sel = JointSelector::from_model_file(
      "/nonexistent/dir/scalfrag-format-model.bin");
  EXPECT_FALSE(sel.model_backed());
  const CooTensor t = fibrous_tensor();
  const auto feat = TensorFeatures::extract(t, 0);
  const JointChoice got = sel.choose(feat, 16);
  const JointChoice want = heuristic_joint_choice(feat, 16);
  EXPECT_TRUE(same_choice(got, want));
}

TEST(JointSelect, LoadRejectsMalformedFile) {
  const std::string path =
      ::testing::TempDir() + "scalfrag_bad_format_model.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a model";
  }
  EXPECT_THROW(FormatSelector::load(path), Error);
  // from_model_file must also swallow corruption, not just absence.
  EXPECT_FALSE(JointSelector::from_model_file(path).model_backed());
  std::remove(path.c_str());
}

TEST(JointSelect, ModelRoundTripPredictsIdentically) {
  FormatSelectorConfig cfg;
  cfg.corpus_size = 8;  // keep the measuring loop short in CI
  cfg.reps = 1;
  cfg.rank = 8;
  FormatSelector sel(cfg);
  sel.train();
  ASSERT_TRUE(sel.trained());

  const std::string path =
      ::testing::TempDir() + "scalfrag_format_model.bin";
  sel.save(path);
  const FormatSelector loaded = FormatSelector::load(path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.trained());

  const CooTensor t = make_frostt_tensor("uber", 1.0 / 4096, 71);
  const auto feat = TensorFeatures::extract(t, 0);
  for (SparseFormat f : kAllFormats) {
    EXPECT_DOUBLE_EQ(sel.predict_ms(feat, f), loaded.predict_ms(feat, f));
  }
  EXPECT_EQ(sel.predict(feat), loaded.predict(feat));

  // The model-backed joint selector is deterministic too, and says so.
  const JointSelector joint(&loaded, nullptr);
  EXPECT_TRUE(joint.model_backed());
  const JointChoice a = joint.choose(feat, 8);
  const JointChoice b = joint.choose(feat, 8);
  EXPECT_TRUE(same_choice(a, b));
  EXPECT_TRUE(a.from_model);
  EXPECT_GT(a.predicted_ms, 0.0);
}

TEST(JointSelect, SaveBeforeTrainThrows) {
  const FormatSelector sel;
  EXPECT_THROW(sel.save(::testing::TempDir() + "never_written.bin"), Error);
}

// --- backend registry --------------------------------------------------

TEST(BackendRegistry, ListsEveryBuiltin) {
  const auto names = BackendRegistry::instance().names();
  for (const char* want :
       {"coo", "coo_host", "csf_tiled", "csf_tiled_sync", "csf_tiled_coop",
        "csf_tiled_serial", "auto"}) {
    EXPECT_TRUE(BackendRegistry::instance().contains(want)) << want;
    EXPECT_NE(std::find(names.begin(), names.end(), want), names.end());
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(BackendRegistry, RejectsUnknownNamesWithTypedError) {
  try {
    BackendRegistry::instance().resolve("csf_tilde");
    FAIL() << "resolve() accepted an unknown backend";
  } catch (const UnknownBackendError& e) {
    EXPECT_EQ(e.name(), "csf_tilde");
    EXPECT_FALSE(e.known().empty());
  }
  // A typo in ExecConfig fails in validate(), before any work runs.
  EXPECT_THROW(ExecConfig{}.backend("coo_hots").validate(),
               UnknownBackendError);
}

TEST(BackendRegistry, MultiDeviceOnlyRunsTheCooPipeline) {
  EXPECT_NO_THROW(ExecConfig{}.devices(2).validate());
  EXPECT_THROW(ExecConfig{}.devices(2).backend("csf_tiled").validate(),
               Error);
}

TEST(BackendRegistry, DispatchMatchesReferenceAcrossBackends) {
  GeneratorConfig g;
  g.dims = {20, 24, 28};
  g.skew = {1.5, 1.5, 1.5};
  g.nnz = 600;
  g.seed = 99;
  CooTensor t = generate_coo(g);
  const order_t mode = 1;
  t.sort_by_mode(mode);
  const FactorList f = random_factors(t, 8, 3);
  const DenseMatrix want = mttkrp_coo_ref(t, f, mode);

  gpusim::SimDevice dev(gpusim::DeviceSpec::rtx3090());
  for (const char* name : {"coo", "coo_host", "csf_tiled", "csf_tiled_sync",
                           "csf_tiled_coop", "csf_tiled_serial", "auto"}) {
    const ExecConfig cfg = ExecConfig{}.backend(name).grain(1);
    const BackendRun run = run_mttkrp_backend(dev, t, f, mode, cfg);
    EXPECT_LT(DenseMatrix::max_abs_diff(want, run.output), 2e-3) << name;
    // "auto" must report the concrete backend it dispatched to.
    EXPECT_NE(run.backend, "auto") << name;
    EXPECT_TRUE(BackendRegistry::instance().contains(run.backend)) << name;
  }
}

}  // namespace
}  // namespace scalfrag
