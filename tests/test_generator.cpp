// Synthetic tensor generator tests: determinism, target adherence,
// sparsity cap, skew behaviour, and the Table III profile registry.

#include <gtest/gtest.h>

#include "tensor/generator.hpp"

namespace scalfrag {
namespace {

TEST(Generator, HitsNnzTarget) {
  GeneratorConfig g{.dims = {128, 128, 128}, .nnz = 5000, .skew = {}, .seed = 1};
  const CooTensor t = generate_coo(g);
  EXPECT_EQ(t.nnz(), 5000u);
}

TEST(Generator, OutputIsSortedCoalescedValid) {
  GeneratorConfig g{
      .dims = {64, 64, 64}, .nnz = 3000, .skew = {2.0, 2.0, 2.0}, .seed = 2};
  CooTensor t = generate_coo(g);
  EXPECT_TRUE(t.is_sorted_by_mode(0));
  EXPECT_NO_THROW(t.validate());
  EXPECT_EQ(t.coalesce_duplicates(), 0u);  // already coalesced
  for (value_t v : t.values()) EXPECT_GT(v, 0.0f);
}

TEST(Generator, DeterministicPerSeed) {
  GeneratorConfig g{.dims = {50, 60, 70}, .nnz = 2000, .skew = {}, .seed = 3};
  const CooTensor a = generate_coo(g);
  const CooTensor b = generate_coo(g);
  ASSERT_EQ(a.nnz(), b.nnz());
  for (nnz_t e = 0; e < a.nnz(); ++e) {
    EXPECT_EQ(a.index(0, e), b.index(0, e));
    EXPECT_EQ(a.index(2, e), b.index(2, e));
    EXPECT_FLOAT_EQ(a.value(e), b.value(e));
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  GeneratorConfig g{.dims = {50, 60, 70}, .nnz = 2000, .skew = {}, .seed = 4};
  GeneratorConfig g2 = g;
  g2.seed = 5;
  const CooTensor a = generate_coo(g);
  const CooTensor b = generate_coo(g2);
  int same = 0;
  const nnz_t n = std::min(a.nnz(), b.nnz());
  for (nnz_t e = 0; e < n; ++e) {
    same += a.index(1, e) == b.index(1, e);
  }
  EXPECT_LT(same, static_cast<int>(n));
}

TEST(Generator, CapsNnzForDenseRequests) {
  // 4×4×4 = 64 cells; asking for 1000 nnz must clamp to ≤ 30%.
  GeneratorConfig g{.dims = {4, 4, 4}, .nnz = 1000, .skew = {}, .seed = 6};
  const CooTensor t = generate_coo(g);
  EXPECT_LE(t.nnz(), 20u);
  EXPECT_GT(t.nnz(), 0u);
}

TEST(Generator, RejectsBadSkew) {
  GeneratorConfig g{.dims = {8, 8}, .nnz = 10, .skew = {0.5, 1.0}, .seed = 1};
  EXPECT_THROW(generate_coo(g), Error);
  g.skew = {1.0};
  EXPECT_THROW(generate_coo(g), Error);  // arity mismatch
}

TEST(FrosttProfiles, AllTenTableIIIEntriesPresent) {
  const auto& ps = frostt_profiles();
  ASSERT_EQ(ps.size(), 10u);
  EXPECT_EQ(ps[0].name, "vast");
  EXPECT_EQ(ps[4].name, "nell-1");
  EXPECT_EQ(ps[9].name, "deli-4d");
  int three = 0, four = 0;
  for (const auto& p : ps) {
    (p.order() == 3 ? three : four)++;
    EXPECT_EQ(p.skew.size(), p.paper_dims.size());
  }
  EXPECT_EQ(three, 5);
  EXPECT_EQ(four, 5);
}

TEST(FrosttProfiles, PaperDensitiesMatchTableIII) {
  // Table III: vast 6.9e-3, nell-2 2.4e-5.
  EXPECT_NEAR(frostt_profile("vast").paper_density(), 6.9e-3, 1e-3);
  EXPECT_NEAR(frostt_profile("nell-2").paper_density(), 2.4e-5, 1e-5);
}

TEST(FrosttProfiles, UnknownNameThrows) {
  EXPECT_THROW(frostt_profile("nonexistent"), Error);
}

TEST(FrosttProfiles, ScaledRecipeShrinksConsistently) {
  const auto& p = frostt_profile("nell-2");
  const auto cfg = p.scaled(1.0 / 1024);
  ASSERT_EQ(cfg.dims.size(), 3u);
  EXPECT_NEAR(static_cast<double>(cfg.nnz),
              static_cast<double>(p.paper_nnz) / 1024.0, 2.0);
  // Density stays at or below the 5% cap.
  double cells = 1.0;
  for (index_t d : cfg.dims) cells *= static_cast<double>(d);
  EXPECT_LE(static_cast<double>(cfg.nnz), 0.051 * cells);
  // Hyper-sparse profiles shrink linearly (ratio preservation): for
  // flickr-3d the density cap never binds, so dims scale by ~1/1024.
  const auto f = frostt_profile("flickr-3d").scaled(1.0 / 1024);
  EXPECT_NEAR(static_cast<double>(f.dims[1]),
              static_cast<double>(frostt_profile("flickr-3d").paper_dims[1]) /
                  1024.0,
              2.0);
}

TEST(FrosttProfiles, ScaleValidation) {
  EXPECT_THROW(frostt_profile("uber").scaled(0.0), Error);
  EXPECT_THROW(frostt_profile("uber").scaled(1.5), Error);
}

TEST(FrosttProfiles, MakeTensorProducesUsableWorkload) {
  const CooTensor t = make_frostt_tensor("nips", 1.0 / 2048, 7);
  EXPECT_GT(t.nnz(), 500u);
  EXPECT_EQ(t.order(), 4);
  EXPECT_TRUE(t.is_sorted_by_mode(0));
}

// Every profile must generate a non-trivial tensor at the default scale.
class ProfileGeneration : public ::testing::TestWithParam<std::string> {};

TEST_P(ProfileGeneration, GeneratesAtDefaultScale) {
  const CooTensor t = make_frostt_tensor(GetParam());
  const auto& p = frostt_profile(GetParam());
  EXPECT_EQ(t.order(), p.order());
  EXPECT_GT(t.nnz(), 256u);
  EXPECT_NO_THROW(t.validate());
  // At default scale each stand-in keeps the right magnitude ordering:
  // enron/deli/flickr/nell are "large", uber/nips/vast "small".
  if (GetParam() == "deli-3d") {
    EXPECT_GT(t.nnz(), 100000u);
  }
  if (GetParam() == "nips") {
    EXPECT_LT(t.nnz(), 10000u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProfiles, ProfileGeneration,
    ::testing::Values("vast", "nell-2", "flickr-3d", "deli-3d", "nell-1",
                      "uber", "nips", "enron", "flickr-4d", "deli-4d"));

}  // namespace
}  // namespace scalfrag
