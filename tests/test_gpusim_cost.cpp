// Cost-model tests: the mechanistic shape properties that drive every
// paper figure — monotonicity in traffic, rise-then-fall in launch
// parameters, atomic penalties, transfer-model linearity.

#include <gtest/gtest.h>

#include "gpusim/cost_model.hpp"
#include "gpusim/transfer.hpp"

namespace scalfrag::gpusim {
namespace {

const DeviceSpec kSpec = DeviceSpec::rtx3090();
const CostModel kModel(kSpec);

KernelProfile memory_bound_profile(std::uint64_t nnz = 1 << 20) {
  KernelProfile p;
  p.work_items = nnz;
  p.flops = nnz * 64;
  p.dram_bytes = nnz * 48;
  p.coalescing = 0.6;
  return p;
}

TEST(CostModel, MoreTrafficCostsMore) {
  const LaunchConfig cfg{2048, 256, 0};
  auto a = memory_bound_profile();
  auto b = a;
  b.dram_bytes *= 4;
  EXPECT_LT(kModel.kernel_ns(cfg, a), kModel.kernel_ns(cfg, b));
}

TEST(CostModel, MoreFlopsCostMoreWhenComputeBound) {
  const LaunchConfig cfg{2048, 256, 0};
  KernelProfile a;
  a.work_items = 1 << 20;
  a.dram_bytes = 1 << 10;  // negligible memory
  a.flops = 1ull << 34;
  auto b = a;
  b.flops *= 2;
  EXPECT_LT(kModel.kernel_ns(cfg, a), kModel.kernel_ns(cfg, b));
}

TEST(CostModel, AtomicsAddTime) {
  const LaunchConfig cfg{2048, 256, 0};
  auto a = memory_bound_profile();
  auto b = a;
  b.atomic_updates = a.work_items * 16;
  EXPECT_LT(kModel.kernel_ns(cfg, a), kModel.kernel_ns(cfg, b));
}

TEST(CostModel, LongSerializationChainDominatesThroughput) {
  const LaunchConfig cfg{2048, 256, 0};
  auto a = memory_bound_profile();
  a.atomic_updates = 1000;  // negligible aggregate
  a.atomic_max_chain = 1.0;
  auto b = a;
  b.atomic_max_chain = 1e6;  // one scorching-hot output row
  EXPECT_LT(kModel.kernel_ns(cfg, a), kModel.kernel_ns(cfg, b));
  // The chain bound is visible: ≥ chain · atomic_ns extra.
  EXPECT_GE(kModel.kernel_ns(cfg, b) - kModel.kernel_ns(cfg, a),
            static_cast<sim_ns>(0.9 * 1e6 * kSpec.atomic_ns));
}

TEST(CostModel, TinyGridStarvesTheMachine) {
  const auto prof = memory_bound_profile();
  const sim_ns tiny = kModel.kernel_ns({16, 64, 0}, prof);
  const sim_ns good = kModel.kernel_ns({2048, 256, 0}, prof);
  EXPECT_GT(tiny, 2 * good);
}

TEST(CostModel, HugeGridPaysSchedulingOverhead) {
  // For a small kernel, 64K blocks of dispatch overhead dominate.
  const auto prof = memory_bound_profile(1 << 14);
  const sim_ns good = kModel.kernel_ns({512, 256, 0}, prof);
  const sim_ns huge = kModel.kernel_ns({65536, 256, 0}, prof);
  EXPECT_GT(huge, good);
}

TEST(CostModel, RiseThenFallAcrossGridSweep) {
  // The Fig. 4 signature: performance (GFlops) improves with grid size,
  // peaks, then degrades.
  const auto prof = memory_bound_profile(1 << 16);
  std::vector<double> g;
  for (std::uint32_t grid = 16; grid <= 65536; grid *= 2) {
    g.push_back(kModel.gflops({grid, 256, 0}, prof));
  }
  const auto best = std::max_element(g.begin(), g.end());
  EXPECT_GT(best - g.begin(), 0) << "peak must not be the smallest grid";
  EXPECT_LT(best - g.begin(), static_cast<long>(g.size()) - 1)
      << "peak must not be the largest grid";
  EXPECT_GT(*best, g.front() * 1.5);
  EXPECT_GT(*best, g.back() * 1.05);
}

TEST(CostModel, SharedMemoryCostsOccupancyAndTime) {
  // A per-thread shared-memory appetite lowers resident blocks, which
  // lowers effective bandwidth and stretches a memory-bound kernel.
  const auto prof = memory_bound_profile();
  const LaunchConfig lean{4096, 256, 0};
  const LaunchConfig heavy{4096, 256, 96 * 256};  // 24 KB/block → 4 blocks
  const auto t_lean = kModel.kernel_time(lean, prof);
  const auto t_heavy = kModel.kernel_time(heavy, prof);
  ASSERT_TRUE(t_lean.feasible);
  ASSERT_TRUE(t_heavy.feasible);
  EXPECT_GT(t_lean.occupancy, t_heavy.occupancy);
  EXPECT_LT(t_lean.total, t_heavy.total);
  // And past the per-block cap, the config cannot launch at all:
  // 104 B/thread × 1024 threads = 104 KB > the 99 KB block limit.
  EXPECT_FALSE(
      kModel.kernel_time({4096, 1024, 104 * 1024}, prof).feasible);
}

TEST(CostModel, InfeasibleConfigFlagsAndMaxes) {
  const auto prof = memory_bound_profile();
  const auto t = kModel.kernel_time({64, 2048, 0}, prof);
  EXPECT_FALSE(t.feasible);
  EXPECT_EQ(t.total, std::numeric_limits<sim_ns>::max());
  EXPECT_DOUBLE_EQ(kModel.gflops({64, 2048, 0}, prof), 0.0);
}

TEST(CostModel, BreakdownComponentsAreConsistent) {
  const auto prof = memory_bound_profile();
  const auto t = kModel.kernel_time({2048, 256, 0}, prof);
  ASSERT_TRUE(t.feasible);
  EXPECT_GT(t.total, 0u);
  EXPECT_GE(t.total, t.launch);
  EXPECT_GT(t.memory, t.compute);  // this profile is memory bound
  EXPECT_GT(t.occupancy, 0.9);
  EXPECT_DOUBLE_EQ(t.utilization, 1.0);
}

TEST(CostModel, GflopsNeverExceedsPeak) {
  KernelProfile p;
  p.work_items = 1 << 20;
  p.flops = 1ull << 36;
  p.dram_bytes = 1;  // absurdly compute-dense
  p.coalescing = 1.0;
  for (std::uint32_t block : {64u, 256u, 1024u}) {
    for (std::uint32_t grid : {256u, 4096u, 65536u}) {
      EXPECT_LE(kModel.gflops({grid, block, 0}, p),
                kSpec.peak_gflops() * 1.001);
    }
  }
}

TEST(Transfer, LatencyPlusBandwidth) {
  // Zero bytes → pure latency.
  const sim_ns lat = transfer_ns(kSpec, 0);
  EXPECT_EQ(lat, static_cast<sim_ns>(kSpec.pcie_latency_us * 1e3));
  // 24.3 GB at 24.3 GB/s ≈ 1 s.
  const sim_ns big = transfer_ns(kSpec, static_cast<std::size_t>(24.3e9));
  EXPECT_NEAR(static_cast<double>(big), 1e9, 1e7);
}

TEST(Transfer, MonotoneInBytes) {
  EXPECT_LT(transfer_ns(kSpec, 1 << 10), transfer_ns(kSpec, 1 << 20));
  EXPECT_LT(transfer_ns(kSpec, 1 << 20), transfer_ns(kSpec, 1 << 30));
}

TEST(Transfer, SmallCopiesAreLatencyDominated) {
  // Fig. 11's over-segmentation penalty: 2 copies of N/2 bytes cost
  // more than 1 copy of N bytes.
  const std::size_t n = 1 << 20;
  EXPECT_GT(2 * transfer_ns(kSpec, n / 2), transfer_ns(kSpec, n));
}

TEST(DeviceSpecTest, TableIIValues) {
  EXPECT_EQ(kSpec.num_sms, 82);
  EXPECT_EQ(kSpec.cuda_cores, 10496);
  EXPECT_DOUBLE_EQ(kSpec.hbm_bandwidth_gbps, 936.2);
  EXPECT_DOUBLE_EQ(kSpec.pcie_bandwidth_gbps, 24.3);
  EXPECT_EQ(kSpec.global_mem_bytes, 24ull << 30);
  const auto cpu = CpuSpec::i7_11700k();
  EXPECT_EQ(cpu.cores, 8);
  EXPECT_DOUBLE_EQ(cpu.mem_bandwidth_gbps, 31.2);
  EXPECT_GT(cpu.peak_gflops(), 100.0);
  EXPECT_GT(kSpec.peak_gflops(), 20000.0);  // ~29 TFlops fp32
}

}  // namespace
}  // namespace scalfrag::gpusim
