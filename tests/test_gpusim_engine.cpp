// Discrete-event engine tests: FIFO stream semantics, per-engine
// serialization, cross-stream overlap, events, memory accounting.

#include <gtest/gtest.h>

#include "gpusim/engine.hpp"

namespace scalfrag::gpusim {
namespace {

DeviceSpec test_spec() {
  DeviceSpec s = DeviceSpec::rtx3090();
  s.pcie_latency_us = 0.0;  // crisp arithmetic in tests
  s.kernel_launch_us = 0.0;
  s.per_block_sched_ns = 0.0;
  return s;
}

KernelProfile small_kernel() {
  KernelProfile p;
  p.work_items = 1 << 16;
  p.flops = 1 << 20;
  p.dram_bytes = 10 << 20;
  return p;
}

TEST(Engine, SameStreamOpsAreFifo) {
  SimDevice dev(test_spec());
  dev.memcpy_h2d(0, 1 << 20, nullptr, "a");
  dev.memcpy_h2d(0, 1 << 20, nullptr, "b");
  dev.launch_kernel(0, {1024, 256, 0}, small_kernel(), nullptr, "k");
  const auto& tl = dev.timeline();
  ASSERT_EQ(tl.size(), 3u);
  EXPECT_EQ(tl[0].start, 0u);
  EXPECT_EQ(tl[1].start, tl[0].end);
  EXPECT_EQ(tl[2].start, tl[1].end);
}

TEST(Engine, H2dEngineSerializesAcrossStreams) {
  SimDevice dev(test_spec());
  const StreamId s1 = dev.create_stream();
  const StreamId s2 = dev.create_stream();
  dev.memcpy_h2d(s1, 1 << 20, nullptr);
  dev.memcpy_h2d(s2, 1 << 20, nullptr);
  const auto& tl = dev.timeline();
  // Both use the single H2D engine: second starts when first ends.
  EXPECT_EQ(tl[1].start, tl[0].end);
}

TEST(Engine, CopyOverlapsKernelOnOtherStream) {
  SimDevice dev(test_spec());
  const StreamId s1 = dev.create_stream();
  const StreamId s2 = dev.create_stream();
  dev.launch_kernel(s1, {1024, 256, 0}, small_kernel(), nullptr, "k");
  dev.memcpy_h2d(s2, 64 << 20, nullptr, "copy");
  const auto& tl = dev.timeline();
  // Different engines, different streams: both start at t=0.
  EXPECT_EQ(tl[0].start, 0u);
  EXPECT_EQ(tl[1].start, 0u);
  EXPECT_GT(dev.breakdown().overlap_saved(), 0u);
}

TEST(Engine, H2dAndD2hAreIndependentEngines) {
  SimDevice dev(test_spec());
  const StreamId s1 = dev.create_stream();
  const StreamId s2 = dev.create_stream();
  dev.memcpy_h2d(s1, 32 << 20, nullptr);
  dev.memcpy_d2h(s2, 32 << 20, nullptr);
  const auto& tl = dev.timeline();
  EXPECT_EQ(tl[0].start, 0u);
  EXPECT_EQ(tl[1].start, 0u);  // full-duplex PCIe
}

TEST(Engine, KernelsSerializeOnComputeEngine) {
  SimDevice dev(test_spec());
  const StreamId s1 = dev.create_stream();
  const StreamId s2 = dev.create_stream();
  dev.launch_kernel(s1, {1024, 256, 0}, small_kernel(), nullptr);
  dev.launch_kernel(s2, {1024, 256, 0}, small_kernel(), nullptr);
  const auto& tl = dev.timeline();
  EXPECT_EQ(tl[1].start, tl[0].end);
}

TEST(Engine, EventsOrderAcrossStreams) {
  SimDevice dev(test_spec());
  const StreamId s1 = dev.create_stream();
  const StreamId s2 = dev.create_stream();
  dev.memcpy_h2d(s1, 16 << 20, nullptr, "upload");
  const EventId ev = dev.record_event(s1);
  dev.wait_event(s2, ev);
  dev.launch_kernel(s2, {1024, 256, 0}, small_kernel(), nullptr, "k");
  const auto& tl = dev.timeline();
  EXPECT_GE(tl[1].start, tl[0].end);
}

TEST(Engine, EventBeforeAnyOpIsZero) {
  SimDevice dev(test_spec());
  const EventId ev = dev.record_event(0);
  const StreamId s = dev.create_stream();
  dev.wait_event(s, ev);
  dev.launch_kernel(s, {64, 64, 0}, small_kernel(), nullptr);
  EXPECT_EQ(dev.timeline()[0].start, 0u);
}

TEST(Engine, FunctionalBodiesRun) {
  SimDevice dev(test_spec());
  int calls = 0;
  dev.memcpy_h2d(0, 1024, [&] { ++calls; });
  dev.launch_kernel(0, {64, 64, 0}, small_kernel(), [&] { ++calls; });
  dev.memcpy_d2h(0, 1024, [&] { ++calls; });
  dev.host_task(0, 100, [&] { ++calls; });
  EXPECT_EQ(calls, 4);
}

TEST(Engine, BreakdownSumsPerKind) {
  SimDevice dev(test_spec());
  dev.memcpy_h2d(0, 1 << 20, nullptr);
  dev.memcpy_d2h(0, 2 << 20, nullptr);
  dev.host_task(0, 12345, nullptr);
  const auto b = dev.breakdown();
  EXPECT_GT(b.h2d, 0u);
  EXPECT_NEAR(static_cast<double>(b.d2h), 2.0 * b.h2d, 2.0);
  EXPECT_EQ(b.host, 12345u);
  EXPECT_EQ(b.makespan, dev.synchronize());
  EXPECT_EQ(b.serial_sum(), b.h2d + b.d2h + b.kernel + b.host);
}

TEST(Engine, ResetTimelineClearsClocks) {
  SimDevice dev(test_spec());
  dev.memcpy_h2d(0, 8 << 20, nullptr);
  EXPECT_GT(dev.synchronize(), 0u);
  dev.reset_timeline();
  EXPECT_EQ(dev.synchronize(), 0u);
  EXPECT_TRUE(dev.timeline().empty());
  dev.memcpy_h2d(0, 1 << 20, nullptr);
  EXPECT_EQ(dev.timeline()[0].start, 0u);
}

TEST(Engine, InvalidStreamAndEventThrow) {
  SimDevice dev(test_spec());
  EXPECT_THROW(dev.memcpy_h2d(99, 1, nullptr), Error);
  EXPECT_THROW(dev.record_event(-1), Error);
  EXPECT_THROW(dev.wait_event(0, 42), Error);
}

TEST(Engine, InfeasibleKernelLaunchThrows) {
  SimDevice dev(test_spec());
  EXPECT_THROW(
      dev.launch_kernel(0, {64, 4096, 0}, small_kernel(), nullptr), Error);
}

TEST(DeviceMemory, AllocatorTracksUsageAndPeak) {
  DeviceAllocator a(1000);
  a.allocate(400);
  EXPECT_EQ(a.used(), 400u);
  a.allocate(500);
  EXPECT_EQ(a.used(), 900u);
  EXPECT_EQ(a.peak(), 900u);
  a.release(500);
  EXPECT_EQ(a.used(), 400u);
  EXPECT_EQ(a.peak(), 900u);
  EXPECT_EQ(a.available(), 600u);
}

TEST(DeviceMemory, OverAllocationThrows) {
  DeviceAllocator a(100);
  a.allocate(80);
  EXPECT_THROW(a.allocate(21), DeviceOutOfMemory);
  try {
    a.allocate(50);
  } catch (const DeviceOutOfMemory& e) {
    EXPECT_EQ(e.requested(), 50u);
    EXPECT_EQ(e.available(), 20u);
  }
}

TEST(DeviceMemory, BufferRaiiReleasesOnDestruction) {
  DeviceAllocator a(1 << 20);
  {
    DeviceBuffer<float> buf(a, 1024);
    EXPECT_EQ(a.used(), 1024 * sizeof(float));
    EXPECT_EQ(buf.count(), 1024u);
    buf.data()[0] = 1.0f;
  }
  EXPECT_EQ(a.used(), 0u);
}

TEST(DeviceMemory, BufferMoveTransfersOwnership) {
  DeviceAllocator a(1 << 20);
  DeviceBuffer<int> b1(a, 256);
  DeviceBuffer<int> b2 = std::move(b1);
  EXPECT_FALSE(b1.valid());
  EXPECT_TRUE(b2.valid());
  EXPECT_EQ(a.used(), 256 * sizeof(int));
  b2 = DeviceBuffer<int>(a, 16);
  EXPECT_EQ(a.used(), 16 * sizeof(int));
}

TEST(DeviceMemory, SimDeviceExposes24GB) {
  SimDevice dev(DeviceSpec::rtx3090());
  EXPECT_EQ(dev.allocator().capacity(), 24ull << 30);
  EXPECT_THROW(DeviceBuffer<char>(dev.allocator(), 25ull << 30),
               DeviceOutOfMemory);
}

TEST(Engine, OpKindNames) {
  EXPECT_STREQ(op_kind_name(OpKind::H2D), "H2D");
  EXPECT_STREQ(op_kind_name(OpKind::D2H), "D2H");
  EXPECT_STREQ(op_kind_name(OpKind::Kernel), "Kernel");
  EXPECT_STREQ(op_kind_name(OpKind::Host), "Host");
}

}  // namespace
}  // namespace scalfrag::gpusim
