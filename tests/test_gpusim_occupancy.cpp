// Occupancy-calculator tests against hand-computed GA102 numbers.

#include <gtest/gtest.h>

#include "gpusim/occupancy.hpp"

namespace scalfrag::gpusim {
namespace {

const DeviceSpec kSpec = DeviceSpec::rtx3090();

TEST(Occupancy, Block256NoShmemIsThreadLimited) {
  const auto occ = compute_occupancy(kSpec, {1024, 256, 0});
  ASSERT_TRUE(occ.feasible);
  // 1536 / 256 = 6 blocks (< 16-block cap).
  EXPECT_EQ(occ.blocks_per_sm, 6);
  EXPECT_EQ(occ.threads_per_sm, 1536);
  EXPECT_DOUBLE_EQ(occ.fraction, 1.0);
  EXPECT_EQ(occ.resident_blocks, 6 * 82);
}

TEST(Occupancy, Block32IsBlockSlotLimited) {
  const auto occ = compute_occupancy(kSpec, {1024, 32, 0});
  ASSERT_TRUE(occ.feasible);
  // 16-block cap binds before the 1536/32=48 thread limit.
  EXPECT_EQ(occ.blocks_per_sm, 16);
  EXPECT_EQ(occ.threads_per_sm, 512);
  EXPECT_NEAR(occ.fraction, 512.0 / 1536.0, 1e-12);
}

TEST(Occupancy, Block1024LeavesThirdIdle) {
  const auto occ = compute_occupancy(kSpec, {1024, 1024, 0});
  ASSERT_TRUE(occ.feasible);
  EXPECT_EQ(occ.blocks_per_sm, 1);
  EXPECT_NEAR(occ.fraction, 1024.0 / 1536.0, 1e-12);
}

TEST(Occupancy, NonWarpMultipleRoundsUp) {
  // 100 threads allocate 4 warps = 128 lanes.
  const auto occ = compute_occupancy(kSpec, {64, 100, 0});
  ASSERT_TRUE(occ.feasible);
  EXPECT_EQ(occ.blocks_per_sm, 12);  // 1536/128
  EXPECT_EQ(occ.threads_per_sm, 12 * 128);
}

TEST(Occupancy, SharedMemoryLimitsResidency) {
  // 30 KB/block → floor(100/30) = 3 blocks despite 6 fitting by threads.
  const auto occ = compute_occupancy(kSpec, {1024, 256, 30 * 1024});
  ASSERT_TRUE(occ.feasible);
  EXPECT_EQ(occ.blocks_per_sm, 3);
}

TEST(Occupancy, InfeasibleConfigs) {
  EXPECT_FALSE(compute_occupancy(kSpec, {0, 256, 0}).feasible);
  EXPECT_FALSE(compute_occupancy(kSpec, {64, 0, 0}).feasible);
  EXPECT_FALSE(compute_occupancy(kSpec, {64, 2048, 0}).feasible);  // > 1024
  EXPECT_FALSE(
      compute_occupancy(kSpec, {64, 128, 128 * 1024}).feasible);  // > cap
}

TEST(Occupancy, WavesScaleWithGrid) {
  const auto occ = compute_occupancy(kSpec, {984, 256, 0});
  // 6 blocks/SM × 82 SMs = 492 resident → 2 exact waves at grid 984.
  EXPECT_DOUBLE_EQ(occ.waves(984), 2.0);
  EXPECT_DOUBLE_EQ(occ.waves(492), 1.0);
}

TEST(Occupancy, CandidateGridIsPowerOfTwoSweep) {
  const auto cands = launch_candidates(kSpec);
  EXPECT_FALSE(cands.empty());
  // 6 block sizes (32..1024) × 13 grid sizes (16..65536).
  EXPECT_EQ(cands.size(), 6u * 13u);
  for (const auto& c : cands) {
    EXPECT_TRUE(compute_occupancy(kSpec, c).feasible) << c.str();
  }
}

TEST(Occupancy, LaunchConfigHelpers) {
  LaunchConfig c{128, 256, 0};
  EXPECT_EQ(c.total_threads(), 128ull * 256);
  EXPECT_EQ(c.str(), "<128x256>");
  EXPECT_TRUE((c == LaunchConfig{128, 256, 0}));
  EXPECT_FALSE((c == LaunchConfig{128, 512, 0}));
}

}  // namespace
}  // namespace scalfrag::gpusim
