// Grid-search tests.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ml/grid_search.hpp"
#include "ml/metrics.hpp"

namespace scalfrag::ml {
namespace {

Dataset noisy_step(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Dataset d(2);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.uniform(0, 1), b = rng.uniform(0, 1);
    const double row[2] = {a, b};
    d.add(row, (a < 0.5 ? 0.0 : 4.0) + 0.8 * rng.normal());
  }
  return d;
}

TEST(GridSearch, EvaluatesFullGridAndPicksMin) {
  const Dataset d = noisy_step(300, 1);
  const auto res = grid_search_dtree(d, {1, 4, 12}, {1, 8}, 3, rmse);
  EXPECT_EQ(res.trials.size(), 6u);
  for (const auto& [cfg, score] : res.trials) {
    EXPECT_GE(score, res.best_score);
  }
  // The winning config must appear in the trials with the best score.
  bool found = false;
  for (const auto& [cfg, score] : res.trials) {
    if (cfg.max_depth == res.best.max_depth &&
        cfg.min_samples_leaf == res.best.min_samples_leaf &&
        score == res.best_score) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(GridSearch, DeepTreesOverfitNoisyData) {
  // With heavy label noise, depth-1 (the true structure) should beat
  // unconstrained depth on held-out folds.
  const Dataset d = noisy_step(400, 2);
  const auto res = grid_search_dtree(d, {1, 16}, {1}, 4, rmse);
  EXPECT_EQ(res.best.max_depth, 1);
}

TEST(GridSearch, ValidatesGrid) {
  const Dataset d = noisy_step(50, 3);
  EXPECT_THROW(grid_search_dtree(d, {}, {1}, 3, rmse), Error);
  EXPECT_THROW(grid_search_dtree(d, {3}, {}, 3, rmse), Error);
}

}  // namespace
}  // namespace scalfrag::ml
