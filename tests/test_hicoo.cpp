// HiCOO format tests: blocking structure, COO round trip, compression,
// and MTTKRP equivalence.

#include <gtest/gtest.h>

#include "tensor/generator.hpp"
#include "tensor/hicoo.hpp"

namespace scalfrag {
namespace {

FactorList random_factors(const CooTensor& t, index_t rank,
                          std::uint64_t seed) {
  Rng rng(seed);
  FactorList f;
  for (order_t m = 0; m < t.order(); ++m) {
    DenseMatrix a(t.dim(m), rank);
    a.randomize(rng);
    f.push_back(std::move(a));
  }
  return f;
}

TEST(Hicoo, BlockStructureOnHandBuiltTensor) {
  // 8×8 matrix, block size 4 → 2×2 block space.
  CooTensor t({8, 8});
  t.push({0, 0}, 1.0f);   // block (0,0)
  t.push({1, 3}, 2.0f);   // block (0,0)
  t.push({0, 7}, 3.0f);   // block (0,1)
  t.push({5, 5}, 4.0f);   // block (1,1)
  const HicooTensor h = HicooTensor::build(t, 4);

  EXPECT_EQ(h.nnz(), 4u);
  EXPECT_EQ(h.num_blocks(), 3u);
  EXPECT_EQ(h.block_size(), 4u);
  // Block (0,0) holds 2 entries.
  EXPECT_EQ(h.bptr(0), 0u);
  EXPECT_EQ(h.bptr(1), 2u);
  EXPECT_EQ(h.block_base(0, 0), 0u);
  EXPECT_EQ(h.block_base(1, 1), 4u);  // second block's mode-1 base
  // Entry (5,5) decodes to offsets (1,1) in block (1,1).
  EXPECT_EQ(h.coordinate(0, 3), 5u);
  EXPECT_EQ(h.coordinate(1, 3), 5u);
}

TEST(Hicoo, RejectsBadBlockSizes) {
  CooTensor t({8, 8});
  EXPECT_THROW(HicooTensor::build(t, 3), Error);    // not pow2
  EXPECT_THROW(HicooTensor::build(t, 1), Error);    // too small
  EXPECT_THROW(HicooTensor::build(t, 512), Error);  // > byte offset
  EXPECT_NO_THROW(HicooTensor::build(t, 256));
}

TEST(Hicoo, CooRoundTripPreservesEntries) {
  const CooTensor t = make_frostt_tensor("nips", 1.0 / 2048, 201);
  const HicooTensor h = HicooTensor::build(t, 64);
  CooTensor back = h.to_coo();
  ASSERT_EQ(back.nnz(), t.nnz());
  back.sort_by_mode(0);
  CooTensor sorted = t;
  sorted.sort_by_mode(0);
  double sum_a = 0, sum_b = 0;
  for (nnz_t e = 0; e < t.nnz(); ++e) {
    for (order_t m = 0; m < t.order(); ++m) {
      EXPECT_EQ(back.index(m, e), sorted.index(m, e));
    }
    sum_a += back.value(e);
    sum_b += sorted.value(e);
  }
  EXPECT_NEAR(sum_a, sum_b, 1e-3);
}

TEST(Hicoo, CompressesClusteredTensor) {
  // Dense 32×32×8 cluster inside a huge index space: per-entry index
  // storage shrinks from 12 B (three index_t) to 3 B (three offsets).
  CooTensor t({1 << 20, 1 << 20, 1 << 10});
  for (index_t i = 0; i < 32; ++i) {
    for (index_t j = 0; j < 32; ++j) {
      for (index_t k = 0; k < 8; ++k) {
        t.push({i, j, k}, 1.0f);
      }
    }
  }
  const HicooTensor h = HicooTensor::build(t, 128);
  EXPECT_LT(h.bytes(), t.bytes() / 2);
  EXPECT_GT(h.avg_nnz_per_block(), 1000.0);
}

TEST(Hicoo, ScatteredTensorGainsLittle) {
  // One entry per block: block overhead ≈ COO indices, no win.
  CooTensor t({1 << 16, 1 << 16});
  for (index_t i = 0; i < 256; ++i) {
    t.push({i * 256, i * 256}, 1.0f);
  }
  const HicooTensor h = HicooTensor::build(t, 128);
  EXPECT_DOUBLE_EQ(h.avg_nnz_per_block(), 1.0);
  EXPECT_GT(h.bytes(), t.bytes());  // strictly worse — as documented
}

TEST(Hicoo, EmptyTensor) {
  CooTensor t({16, 16, 16});
  const HicooTensor h = HicooTensor::build(t);
  EXPECT_EQ(h.nnz(), 0u);
  EXPECT_EQ(h.num_blocks(), 0u);
  EXPECT_EQ(h.to_coo().nnz(), 0u);
}

TEST(Hicoo, MttkrpAccumulateFlag) {
  CooTensor t({4, 4});
  t.push({1, 1}, 2.0f);
  const HicooTensor h = HicooTensor::build(t, 4);
  auto f = random_factors(t, 4, 202);
  DenseMatrix out(4, 4, 1.0f);
  h.mttkrp(f, 0, out, /*accumulate=*/true);
  EXPECT_FLOAT_EQ(out(0, 0), 1.0f);  // untouched row retained
  h.mttkrp(f, 0, out, /*accumulate=*/false);
  EXPECT_FLOAT_EQ(out(0, 0), 0.0f);  // zeroed first
}

// Property: HiCOO MTTKRP == COO reference across modes, block sizes,
// and tensor shapes.
class HicooMttkrp
    : public ::testing::TestWithParam<std::tuple<const char*, int, int>> {};

TEST_P(HicooMttkrp, MatchesReference) {
  const auto [name, mode, block] = GetParam();
  const CooTensor t = make_frostt_tensor(name, 1.0 / 4096, 203);
  if (static_cast<order_t>(mode) >= t.order()) GTEST_SKIP();
  const auto f = random_factors(t, 8, 204);
  const auto expect = mttkrp_coo_ref(t, f, static_cast<order_t>(mode));
  const HicooTensor h = HicooTensor::build(t, static_cast<index_t>(block));
  DenseMatrix got(t.dim(static_cast<order_t>(mode)), 8);
  h.mttkrp(f, static_cast<order_t>(mode), got);
  EXPECT_LT(DenseMatrix::max_abs_diff(expect, got), 2e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HicooMttkrp,
    ::testing::Combine(::testing::Values("nips", "uber", "nell-2"),
                       ::testing::Values(0, 1, 2, 3),
                       ::testing::Values(16, 128)));

}  // namespace
}  // namespace scalfrag
