// Hybrid CPU/GPU partition tests: conservation, threshold semantics,
// functional equivalence and the CPU cost model.

#include <gtest/gtest.h>

#include <limits>

#include "scalfrag/hybrid.hpp"
#include "tensor/features.hpp"
#include "tensor/generator.hpp"

namespace scalfrag {
namespace {

FactorList random_factors(const CooTensor& t, index_t rank,
                          std::uint64_t seed) {
  Rng rng(seed);
  FactorList f;
  for (order_t m = 0; m < t.order(); ++m) {
    DenseMatrix a(t.dim(m), rank);
    a.randomize(rng);
    f.push_back(std::move(a));
  }
  return f;
}

nnz_t ranges_nnz(const HybridPartition& part) {
  nnz_t n = 0;
  for (const auto& [b, e] : part.cpu_ranges) n += e - b;
  return n;
}

TEST(Hybrid, PartitionConservesEntries) {
  CooTensor t = make_frostt_tensor("enron", 1.0 / 4096, 51);
  const auto part = partition_for_hybrid(t, 0, 8);
  EXPECT_EQ(part.cpu_nnz + part.gpu_nnz, t.nnz());
  EXPECT_EQ(ranges_nnz(part), part.cpu_nnz);
  double sum_t = 0, sum_p = 0;
  for (value_t v : t.values()) sum_t += v;
  for (const auto& [b, e] : part.cpu_ranges) {
    for (nnz_t i = b; i < e; ++i) sum_p += t.value(i);
  }
  const CooSpan gpu = part.gpu_view(t);
  EXPECT_EQ(gpu.nnz(), part.gpu_nnz);
  for (nnz_t e = 0; e < gpu.nnz(); ++e) sum_p += gpu.value(e);
  // gpu_whole implies no CPU ranges, so the halves never double-count.
  EXPECT_NEAR(sum_t, sum_p, 1e-3);
}

TEST(Hybrid, ThresholdRoutesShortSlicesToCpu) {
  CooTensor t({4, 100});
  // Slice 0: 1 nnz (short). Slice 1: 50 nnz (long). Slice 3: 2 nnz.
  t.push({0, 7}, 1.0f);
  for (index_t j = 0; j < 50; ++j) t.push({1, j}, 1.0f);
  t.push({3, 1}, 1.0f);
  t.push({3, 2}, 1.0f);
  t.sort_by_mode(0);
  const auto part = partition_for_hybrid(t, 0, 4);
  EXPECT_EQ(part.cpu_nnz, 3u);  // slices 0 and 3
  EXPECT_FALSE(part.gpu_whole);
  EXPECT_EQ(part.gpu_nnz, 50u);
  // The GPU share is a gather permutation, not a copy: here it selects
  // exactly slice 1's entries [1, 51) of the sorted parent.
  ASSERT_EQ(part.gpu_perm.size(), 50u);
  for (std::size_t i = 0; i < part.gpu_perm.size(); ++i) {
    EXPECT_EQ(part.gpu_perm[i], i + 1);
  }
  EXPECT_EQ(part.cpu_slices, 2u);
  EXPECT_EQ(part.gpu_slices, 1u);
  // Slices 0 and 3 are non-adjacent in the sorted entry order, so they
  // stay two separate zero-copy ranges: [0,1) and [51,53).
  ASSERT_EQ(part.cpu_ranges.size(), 2u);
  EXPECT_EQ(part.cpu_ranges[0], (std::pair<nnz_t, nnz_t>{0, 1}));
  EXPECT_EQ(part.cpu_ranges[1], (std::pair<nnz_t, nnz_t>{51, 53}));
}

TEST(Hybrid, ZeroThresholdSendsAllToGpu) {
  CooTensor t = make_frostt_tensor("nips", 1.0 / 4096, 52);
  const std::uint64_t extracts_before = CooTensor::extract_calls();
  const auto part = partition_for_hybrid(t, 0, 0);
  EXPECT_EQ(part.cpu_nnz, 0u);
  EXPECT_TRUE(part.cpu_ranges.empty());
  // An all-GPU partition reuses the parent span: no copy, no gather.
  EXPECT_TRUE(part.gpu_whole);
  EXPECT_TRUE(part.gpu_perm.empty());
  EXPECT_EQ(part.gpu_view(t).nnz(), t.nnz());
  EXPECT_FALSE(part.gpu_view(t).is_gather());
  EXPECT_EQ(CooTensor::extract_calls(), extracts_before);
  EXPECT_GT(part.gpu_slices, 0u);
}

TEST(Hybrid, PartsRemainModeSorted) {
  CooTensor t = make_frostt_tensor("enron", 1.0 / 8192, 53);
  const auto part = partition_for_hybrid(t, 0, 6);
  if (!part.gpu_whole) {
    // Rebuild the gather view WITHOUT the sortedness hint gpu_view()
    // installs, so this actually scans the gathered order.
    const CooSpan gpu =
        CooSpan(t).gather(part.gpu_perm.data(), part.gpu_perm.size());
    EXPECT_TRUE(gpu.is_sorted_by_mode(0));
  }
  // CPU ranges view the sorted parent, so each range is slice-grouped.
  for (const auto& [b, e] : part.cpu_ranges) {
    EXPECT_TRUE(t.span(b, e).slices_contiguous(0));
  }
}

TEST(Hybrid, PartsSumToWholeMttkrp) {
  CooTensor t = make_frostt_tensor("enron", 1.0 / 8192, 54);
  const auto f = random_factors(t, 8, 55);
  const auto whole = mttkrp_coo_ref(t, f, 0);

  // Threshold above the mean slice size: a skewed tensor always has
  // sub-mean slices, so both halves are exercised.
  const auto feat = TensorFeatures::extract(t, 0);
  const auto part = partition_for_hybrid(
      t, 0, static_cast<nnz_t>(feat.avg_nnz_per_slice) + 1);
  ASSERT_FALSE(part.cpu_ranges.empty());
  DenseMatrix acc(t.dim(0), 8);
  cpu_mttkrp_exec(CooSpan(t), part.cpu_ranges, f, 0, acc);
  mttkrp_coo_par(part.gpu_view(t), f, 0, acc, /*accumulate=*/true);
  EXPECT_LT(DenseMatrix::max_abs_diff(whole, acc), 2e-3);
}

TEST(Hybrid, CpuExecMatchesReferenceOnLargePart) {
  // Force the threaded path (nnz > 4096).
  GeneratorConfig g{.dims = {64, 128, 128},
                    .nnz = 20000,
                    .skew = {1.5, 1.5, 1.5},
                    .seed = 56};
  CooTensor t = generate_coo(g);
  const auto f = random_factors(t, 8, 57);
  const auto expect = mttkrp_coo_ref(t, f, 0);
  DenseMatrix got(t.dim(0), 8);
  // Whole-span run through the canonical ranged entry point: one range
  // covering every entry.
  t.sort_by_mode(0);
  const std::pair<nnz_t, nnz_t> whole[] = {{0, t.nnz()}};
  cpu_mttkrp_exec(CooSpan(t), whole, f, 0, got);
  EXPECT_LT(DenseMatrix::max_abs_diff(expect, got), 2e-3);
}

TEST(Hybrid, CpuTimeModelScalesWithWork) {
  const auto cpu = gpusim::CpuSpec::i7_11700k();
  CooTensor small = make_frostt_tensor("nips", 1.0 / 8192, 58);
  CooTensor big = make_frostt_tensor("nips", 1.0 / 1024, 58);
  EXPECT_LT(cpu_mttkrp_ns(cpu, small, 16), cpu_mttkrp_ns(cpu, big, 16));
  EXPECT_LT(cpu_mttkrp_ns(cpu, small, 8), cpu_mttkrp_ns(cpu, small, 64));
  CooTensor empty({4, 4});
  EXPECT_EQ(cpu_mttkrp_ns(cpu, empty, 16), 0u);
}

TEST(Hybrid, AutoThresholdWalksCensusExactly) {
  // Census {4, 4, 4, 9, 13}: with a budget that affords the CPU share
  // of the 9-length slice but not the 13, the largest affordable
  // threshold is 10 — not a power of two. The old doubling probe tried
  // thr=8 (share 12, fits) then thr=16 (share 34, over budget) and
  // returned 8, stranding slice 3 on the GPU even though the budget
  // covered it.
  CooTensor t({5, 64});
  const index_t lens[] = {4, 4, 4, 9, 13};
  for (index_t s = 0; s < 5; ++s) {
    for (index_t j = 0; j < lens[s]; ++j) t.push({s, j}, 1.0f);
  }
  t.sort_by_mode(0);
  const auto cpu = gpusim::CpuSpec::i7_11700k();
  const index_t rank = 16;
  const sim_ns budget = cpu_mttkrp_ns(cpu, 21, t.order(), rank);

  const nnz_t thr = auto_hybrid_threshold(t, 0, rank, cpu, budget);
  EXPECT_EQ(thr, 10u);
  const auto part = partition_for_hybrid(t, 0, thr);
  EXPECT_EQ(part.cpu_nnz, 21u);
  EXPECT_EQ(part.cpu_slices, 4u);
  // The chosen share fits the budget; the next census step would not.
  EXPECT_LE(cpu_mttkrp_ns(cpu, part.cpu_nnz, t.order(), rank), budget);
  EXPECT_GT(cpu_mttkrp_ns(cpu, 34, t.order(), rank), budget);
}

TEST(Hybrid, AutoThresholdDegenerateBudgets) {
  CooTensor t = make_frostt_tensor("enron", 1.0 / 8192, 59);
  const auto cpu = gpusim::CpuSpec::i7_11700k();
  // Zero budget or empty tensor: hybrid stays off.
  EXPECT_EQ(auto_hybrid_threshold(t, 0, 16, cpu, 0), 0u);
  CooTensor empty({4, 4});
  EXPECT_EQ(auto_hybrid_threshold(empty, 0, 16, cpu, 1000), 0u);
  // Whatever a near-zero budget yields, its CPU share must fit it.
  const nnz_t thr1 = auto_hybrid_threshold(t, 0, 16, cpu, 1);
  const auto p1 = partition_for_hybrid(t, 0, thr1);
  EXPECT_LE(cpu_mttkrp_ns(cpu, p1.cpu_nnz, t.order(), 16), 1u);
  // An unbounded budget routes every slice: threshold clears the
  // longest slice (the old doubling loop could overflow hunting it).
  const auto feat = TensorFeatures::extract(t, 0);
  const nnz_t all = auto_hybrid_threshold(t, 0, 16, cpu,
                                          std::numeric_limits<sim_ns>::max());
  EXPECT_EQ(all, static_cast<nnz_t>(feat.max_nnz_per_slice) + 1);
  EXPECT_EQ(partition_for_hybrid(t, 0, all).cpu_nnz, t.nnz());
}

TEST(Hybrid, RequiresSortedInput) {
  CooTensor t({4, 4});
  t.push({3, 0}, 1.0f);
  t.push({0, 0}, 1.0f);
  EXPECT_THROW(partition_for_hybrid(t, 0, 2), Error);
}

}  // namespace
}  // namespace scalfrag
