// Cross-module integration tests: the paper's headline claims exercised
// end to end on the scaled FROSTT stand-ins — ScalFrag must beat the
// ParTI baseline in kernel time and end-to-end time, and the full
// tune→pipeline→CPD flow must hold together.

#include <gtest/gtest.h>

#include "parti/parti_executor.hpp"
#include "scalfrag/scalfrag.hpp"

namespace scalfrag {
namespace {

const gpusim::DeviceSpec kSpec = gpusim::DeviceSpec::rtx3090();

FactorList random_factors(const CooTensor& t, index_t rank,
                          std::uint64_t seed) {
  Rng rng(seed);
  FactorList f;
  for (order_t m = 0; m < t.order(); ++m) {
    DenseMatrix a(t.dim(m), rank);
    a.randomize(rng);
    f.push_back(std::move(a));
  }
  return f;
}

LaunchSelector trained_selector() {
  AutoTunerConfig cfg;
  cfg.corpus_size = 48;
  cfg.seed = 2024;
  AutoTuner tuner(kSpec, cfg);
  tuner.train();
  return tuner.selector();
}

TEST(Integration, EndToEndSpeedupOnEveryProfile) {
  // Fig. 10: ScalFrag end-to-end beats ParTI on all ten tensors,
  // roughly 1.3×–2.0×.
  const LaunchSelector sel = trained_selector();
  gpusim::SimDevice dev(kSpec);
  PipelineExecutor exec(dev, &sel);

  for (const auto& prof : frostt_profiles()) {
    CooTensor t = make_frostt_tensor(prof.name, 1.0 / 512, 7);
    const auto f = random_factors(t, 16, 8);
    const auto base = parti::run_mttkrp(dev, t, f, 0);
    const auto ours = exec.run(t, f, 0);
    const double speedup = static_cast<double>(base.total_ns) /
                           static_cast<double>(ours.total_ns);
    EXPECT_GT(speedup, 1.0) << prof.name;
    EXPECT_LT(speedup, 4.0) << prof.name << " (suspiciously large)";
    // And identical numerics.
    EXPECT_LT(DenseMatrix::max_abs_diff(base.output, ours.output), 2e-3)
        << prof.name;
  }
}

TEST(Integration, KernelSpeedupOnEveryProfile) {
  // Fig. 9: the tuned shared-memory kernel beats ParTI's kernel.
  const LaunchSelector sel = trained_selector();
  gpusim::SimDevice dev(kSpec);
  PipelineExecutor exec(dev, &sel);
  ExecConfig one_shot;  // single segment isolates kernel behaviour
  one_shot.num_segments = 1;
  one_shot.num_streams = 1;

  for (const auto& prof : frostt_profiles()) {
    CooTensor t = make_frostt_tensor(prof.name, 1.0 / 512, 9);
    const auto f = random_factors(t, 16, 10);
    const auto base = parti::run_mttkrp(dev, t, f, 0);
    const auto ours = exec.run(t, f, 0, one_shot);
    EXPECT_LT(ours.breakdown.kernel, base.breakdown.kernel) << prof.name;
  }
}

TEST(Integration, AdaptiveLaunchBeatsStaticForScalFragKernel) {
  const LaunchSelector sel = trained_selector();
  gpusim::SimDevice dev(kSpec);
  PipelineExecutor adaptive(dev, &sel);
  PipelineExecutor static_exec(dev, nullptr);

  int wins = 0, total = 0;
  for (const char* name : {"vast", "nips", "uber", "nell-2", "enron"}) {
    CooTensor t = make_frostt_tensor(name, 1.0 / 512, 11);
    const auto f = random_factors(t, 16, 12);
    const auto a = adaptive.run(t, f, 0);
    const auto s = static_exec.run(t, f, 0);
    wins += a.breakdown.kernel <= s.breakdown.kernel;
    ++total;
  }
  // The learned selector should win on most profiles (it can tie).
  EXPECT_GE(wins * 2, total);
}

TEST(Integration, SegmentationUnlocksTensorsBiggerThanDevice) {
  // A tensor whose COO image exceeds device memory must fail the
  // ParTI whole-tensor flow but succeed via segmentation.
  gpusim::DeviceSpec tiny = kSpec;
  tiny.global_mem_bytes = 1 << 20;  // 1 MB device
  gpusim::SimDevice dev(tiny);

  CooTensor t = make_frostt_tensor("nell-2", 1.0 / 1024, 13);  // ~1.2 MB COO
  ASSERT_GT(t.bytes(), tiny.global_mem_bytes / 2);
  const auto f = random_factors(t, 4, 14);

  EXPECT_THROW(parti::run_mttkrp(dev, t, f, 0), DeviceOutOfMemory);

  const int segs = segments_for_budget(t, 0, 4, tiny.global_mem_bytes / 8);
  PipelineExecutor exec(dev);
  ExecConfig opt;
  opt.num_segments = segs;
  opt.num_streams = 2;
  const auto res = exec.run(t, f, 0, opt);
  const auto expect = mttkrp_coo_ref(t, f, 0);
  EXPECT_LT(DenseMatrix::max_abs_diff(res.output, expect), 2e-3);
}

TEST(Integration, CpdWithFullScalFragStackConverges) {
  const LaunchSelector sel = trained_selector();
  gpusim::SimDevice dev(kSpec);

  CooTensor t = make_frostt_tensor("nips", 1.0 / 2048, 15);
  const auto cfg =
      ExecConfig{}.backend("coo").rank(8).max_iters(5).hybrid_threshold(4);
  const CpdResult res = cpd_als(t, cfg, &dev, &sel);
  EXPECT_GT(res.final_fit, 0.0);
  EXPECT_GT(res.mttkrp_sim_ns, 0u);
  EXPECT_EQ(res.mttkrp_calls, 5 * 4);
}

TEST(Integration, CsfCompressionOnFrosttStandIns) {
  // §II-D: tree formats compress clustered tensors relative to COO.
  for (const char* name : {"nell-2", "enron"}) {
    CooTensor t = make_frostt_tensor(name, 1.0 / 2048, 16);
    const CsfTensor c = CsfTensor::build(t, 0);
    EXPECT_LT(c.bytes(), 2 * t.bytes()) << name;
    EXPECT_EQ(c.nnz(), t.nnz()) << name;
  }
}

TEST(Integration, WholeFlowIsDeterministic) {
  // Reproducibility is a core claim: the same seeds must give the same
  // tensors, the same trained model, the same selections, and the same
  // simulated timings — bit for bit — on every run.
  auto one_run = [] {
    AutoTunerConfig cfg;
    cfg.corpus_size = 8;
    cfg.seed = 909;
    AutoTuner tuner(kSpec, cfg);
    tuner.train();
    const LaunchSelector sel = tuner.selector();
    gpusim::SimDevice dev(kSpec);
    PipelineExecutor exec(dev, &sel);
    CooTensor t = make_frostt_tensor("enron", 1.0 / 2048, 910);
    const auto f = random_factors(t, 16, 911);
    const auto res = exec.run(t, f, 0);
    return std::tuple(res.total_ns, res.launches, res.plan.size(),
                      res.output(0, 0));
  };
  const auto a = one_run();
  const auto b = one_run();
  EXPECT_EQ(std::get<0>(a), std::get<0>(b));
  EXPECT_EQ(std::get<1>(a), std::get<1>(b));
  EXPECT_EQ(std::get<2>(a), std::get<2>(b));
  EXPECT_EQ(std::get<3>(a), std::get<3>(b));
}

TEST(Integration, TnsRoundTripThroughFullPipeline) {
  CooTensor t = make_frostt_tensor("uber", 1.0 / 4096, 17);
  const std::string path = ::testing::TempDir() + "scalfrag_integration.tns";
  write_tns_file(path, t);
  CooTensor loaded = read_tns_file(path, t.dims());
  std::remove(path.c_str());
  loaded.sort_by_mode(0);

  const auto f = random_factors(t, 8, 18);
  gpusim::SimDevice dev(kSpec);
  PipelineExecutor exec(dev);
  const auto res = exec.run(loaded, f, 0);
  EXPECT_LT(DenseMatrix::max_abs_diff(res.output, mttkrp_coo_ref(t, f, 0)),
            2e-3);
}

}  // namespace
}  // namespace scalfrag
