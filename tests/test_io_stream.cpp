// Chunked .tns ingestion tests (suite OutOfCore): bounded chunks
// reassemble to the whole tensor, malformed input is a typed error in
// the read_tns taxonomy, CRLF files parse, and chunk residency is
// bounded by the chunk cap rather than the file size.

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "obs/metrics.hpp"
#include "tensor/generator.hpp"
#include "tensor/io_stream.hpp"
#include "tensor/io_tns.hpp"

namespace scalfrag {
namespace {

/// Reassemble every chunk into one tensor dimensioned by final dims.
CooTensor drain(TnsChunkReader& reader, std::size_t* chunks = nullptr) {
  std::vector<CooTensor> parts;
  CooTensor chunk;
  while (reader.next(chunk)) parts.push_back(std::move(chunk));
  if (chunks != nullptr) *chunks = parts.size();
  SF_CHECK(reader.order() > 0, "no data read");
  CooTensor all(reader.dims());
  std::vector<index_t> c(reader.order());
  for (const CooTensor& p : parts) {
    for (nnz_t e = 0; e < p.nnz(); ++e) {
      for (order_t m = 0; m < p.order(); ++m) c[m] = p.index(m, e);
      all.push(std::span<const index_t>(c.data(), c.size()), p.value(e));
    }
  }
  return all;
}

TEST(OutOfCore, ChunksReassembleToWholeTensor) {
  const CooTensor t = make_frostt_tensor("uber", 1.0 / 4096, 31);
  std::ostringstream out;
  write_tns(out, t);
  std::istringstream in(out.str());

  TnsChunkOptions opt;
  opt.max_chunk_nnz = 37;  // force many ragged chunks
  TnsChunkReader reader(in, opt);
  std::size_t chunks = 0;
  const CooTensor all = drain(reader, &chunks);

  EXPECT_GT(chunks, 1u);
  EXPECT_TRUE(reader.exhausted());
  EXPECT_EQ(reader.entries_read(), t.nnz());
  ASSERT_EQ(all.nnz(), t.nnz());
  for (order_t m = 0; m < t.order(); ++m) {
    EXPECT_EQ(all.mode_indices(m), t.mode_indices(m));
  }
  EXPECT_EQ(std::memcmp(all.values().data(), t.values().data(),
                        t.nnz() * sizeof(value_t)),
            0);
}

TEST(OutOfCore, ByteBudgetDerivesChunkCap) {
  const CooTensor t = make_frostt_tensor("uber", 1.0 / 4096, 32);
  std::ostringstream out;
  write_tns(out, t);
  std::istringstream in(out.str());

  TnsChunkOptions opt;
  opt.max_chunk_bytes = 1024;  // 64 entries for an order-3 tensor
  TnsChunkReader reader(in, opt);
  const std::size_t entry_bytes =
      t.order() * sizeof(index_t) + sizeof(value_t);
  CooTensor chunk;
  while (reader.next(chunk)) {
    EXPECT_LE(chunk.bytes(), opt.max_chunk_bytes + entry_bytes);
  }
  EXPECT_EQ(reader.entries_read(), t.nnz());
}

TEST(OutOfCore, CrlfFileParsesIdentically) {
  std::istringstream in(
      "# crlf file\r\n"
      "1 1 1 1.5\r\n"
      "2 3 1 -2.0\r\n"
      "4 2 2 0.25\r\n");
  TnsChunkReader reader(in);
  const CooTensor t = drain(reader);
  ASSERT_EQ(t.nnz(), 3u);
  EXPECT_EQ(t.dims(), (std::vector<index_t>{4, 3, 2}));
  EXPECT_FLOAT_EQ(t.value(1), -2.0f);
}

TEST(OutOfCore, TruncatedFinalLineIsTypedError) {
  // EOF arrives mid-entry: the last line lost its value field. This
  // must be an error, never a silently short tensor.
  std::istringstream in(
      "1 1 1 1.0\n"
      "2 2 2\n");
  TnsChunkReader reader(in);
  CooTensor chunk;
  EXPECT_THROW(
      {
        while (reader.next(chunk)) {
        }
      },
      Error);
}

TEST(OutOfCore, SingleFieldFinalLineIsTypedError) {
  std::istringstream in("3\n");
  TnsChunkReader reader(in);
  CooTensor chunk;
  EXPECT_THROW(reader.next(chunk), Error);
}

TEST(OutOfCore, EmptyInputIsTypedError) {
  std::istringstream in("# comments only\n\n");
  TnsChunkReader reader(in);
  CooTensor chunk;
  EXPECT_THROW(reader.next(chunk), Error);
}

TEST(OutOfCore, ExpectedNnzMismatchIsTypedError) {
  std::istringstream in("1 1 1.0\n2 2 2.0\n");
  TnsChunkOptions opt;
  opt.expected_nnz = 3;
  TnsChunkReader reader(in, opt);
  CooTensor chunk;
  EXPECT_THROW(
      {
        while (reader.next(chunk)) {
        }
      },
      Error);
}

TEST(OutOfCore, DimsHintValidatesEachLine) {
  std::istringstream in("9 1 2.0\n");
  TnsChunkOptions opt;
  opt.dims_hint = {5, 5};
  TnsChunkReader reader(in, opt);
  CooTensor chunk;
  EXPECT_THROW(reader.next(chunk), Error);
}

TEST(OutOfCore, ChunkResidencyIsBoundedByCapNotFileSize) {
  const CooTensor t = make_frostt_tensor("uber", 1.0 / 4096, 33);
  std::ostringstream out;
  write_tns(out, t);
  std::istringstream in(out.str());

  obs::MetricsRegistry met;
  TnsChunkOptions opt;
  opt.max_chunk_nnz = 64;
  opt.metrics = &met;
  TnsChunkReader reader(in, opt);
  CooTensor chunk;
  while (reader.next(chunk)) {
    chunk = CooTensor();  // drop it, as a streaming consumer would
  }
  const std::size_t entry_bytes =
      t.order() * sizeof(index_t) + sizeof(value_t);
  const double peak =
      met.gauge(std::string(kLoaderResidentGauge) + "_peak");
  ASSERT_GT(t.nnz(), 64u * 4);  // the bound below is meaningfully small
  EXPECT_LE(peak, static_cast<double>(65 * entry_bytes));
  EXPECT_EQ(met.gauge(kLoaderResidentGauge), 0.0);
}

TEST(OutOfCore, MissingFileThrows) {
  EXPECT_THROW(TnsFileChunkReader("/nonexistent/dir/x.tns"), Error);
}

}  // namespace
}  // namespace scalfrag
