// FROSTT .tns I/O tests: parsing, comments, validation, round trips.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <sstream>

#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "tensor/generator.hpp"
#include "tensor/io_tns.hpp"

namespace scalfrag {
namespace {

TEST(IoTns, ParsesBasicFile) {
  std::istringstream in(
      "# a comment line\n"
      "1 1 1 1.5\n"
      "2 3 1 -2.0\n"
      "\n"
      "4 2 2 0.25  # trailing comment\n");
  const CooTensor t = read_tns(in);
  ASSERT_EQ(t.order(), 3);
  EXPECT_EQ(t.nnz(), 3u);
  // Dims inferred from max index.
  EXPECT_EQ(t.dims(), (std::vector<index_t>{4, 3, 2}));
  EXPECT_EQ(t.index(0, 0), 0u);  // 1-based → 0-based
  EXPECT_FLOAT_EQ(t.value(1), -2.0f);
}

TEST(IoTns, DimsHintValidates) {
  std::istringstream ok("1 1 2.0\n");
  const CooTensor t = read_tns(ok, {5, 5});
  EXPECT_EQ(t.dims(), (std::vector<index_t>{5, 5}));

  std::istringstream bad("9 1 2.0\n");
  EXPECT_THROW(read_tns(bad, {5, 5}), Error);
}

TEST(IoTns, RejectsMalformedLines) {
  std::istringstream wrong_arity("1 1 1 1.0\n1 1 2.0\n");
  EXPECT_THROW(read_tns(wrong_arity), Error);

  std::istringstream zero_index("0 1 1.0\n");
  EXPECT_THROW(read_tns(zero_index), Error);

  std::istringstream frac_index("1.5 1 1.0\n");
  EXPECT_THROW(read_tns(frac_index), Error);

  std::istringstream empty("# only comments\n\n");
  EXPECT_THROW(read_tns(empty), Error);
}

TEST(IoTns, RoundTripPreservesEntries) {
  const CooTensor t = make_frostt_tensor("uber", 1.0 / 8192, 11);
  std::ostringstream out;
  write_tns(out, t);
  std::istringstream in(out.str());
  // Hint dims: trailing empty slices would otherwise shrink the dims.
  const CooTensor back = read_tns(in, t.dims());
  ASSERT_EQ(back.nnz(), t.nnz());
  for (nnz_t e = 0; e < t.nnz(); ++e) {
    for (order_t m = 0; m < t.order(); ++m) {
      EXPECT_EQ(back.index(m, e), t.index(m, e));
    }
    EXPECT_NEAR(back.value(e), t.value(e), 1e-5);
  }
}

TEST(IoTns, RandomizedRoundTripIsBitExact) {
  // Values across ~18 orders of magnitude, both signs. write_tns emits
  // max_digits10 significant digits, so the write→read round trip must
  // reproduce every float BIT-exactly — EXPECT_NEAR would mask the old
  // 6-digit truncation this guards against.
  Rng rng(771);
  CooTensor t({40, 30, 20});
  std::vector<index_t> c(3);
  for (int e = 0; e < 1000; ++e) {
    c[0] = static_cast<index_t>(rng.next_below(40));
    c[1] = static_cast<index_t>(rng.next_below(30));
    c[2] = static_cast<index_t>(rng.next_below(20));
    const int exponent = static_cast<int>(rng.next_below(61)) - 30;
    const float v =
        std::ldexp(rng.next_float() - 0.5f, exponent);
    t.push(std::span<const index_t>(c.data(), c.size()), v);
  }
  std::ostringstream out;
  write_tns(out, t);
  std::istringstream in(out.str());
  const CooTensor back = read_tns(in, t.dims());
  ASSERT_EQ(back.nnz(), t.nnz());
  for (order_t m = 0; m < t.order(); ++m) {
    EXPECT_EQ(back.mode_indices(m), t.mode_indices(m));
  }
  EXPECT_EQ(std::memcmp(back.values().data(), t.values().data(),
                        t.nnz() * sizeof(value_t)),
            0);
}

TEST(IoTns, WritePrecisionDoesNotLeakToLaterOutput) {
  CooTensor t({2});
  t.push({0}, 0.123456789f);
  std::ostringstream out;
  const std::streamsize before = out.precision();
  write_tns(out, t);
  EXPECT_EQ(out.precision(), before);
}

TEST(IoTns, LoaderPeakResidencyStaysNearFinalBytes) {
  const CooTensor t = make_frostt_tensor("uber", 1.0 / 2048, 21);
  std::ostringstream out;
  write_tns(out, t);
  std::istringstream in(out.str());
  obs::MetricsRegistry met;
  const CooTensor back = read_tns(in, t.dims(), t.nnz(), &met);
  ASSERT_EQ(back.nnz(), t.nnz());
  const double peak =
      met.gauge(std::string(kLoaderResidentGauge) + "_peak");
  // Direct-push loading: peak is one tensor, not the historical 2×
  // staging copy. 1.25× slack covers refresh granularity.
  EXPECT_GE(peak, static_cast<double>(back.bytes()) * 0.9);
  EXPECT_LE(peak, static_cast<double>(back.bytes()) * 1.25);
  // The loader's registration ends with the call; the peak survives.
  EXPECT_EQ(met.gauge(kLoaderResidentGauge), 0.0);
}

TEST(IoTns, EmptyStreamWithHintYieldsEmptyTensor) {
  std::istringstream in("# nothing but comments\n");
  const CooTensor t = read_tns(in, {4, 5});
  EXPECT_EQ(t.dims(), (std::vector<index_t>{4, 5}));
  EXPECT_EQ(t.nnz(), 0u);
}

TEST(IoTns, FileRoundTrip) {
  const CooTensor t = make_frostt_tensor("nips", 1.0 / 8192, 13);
  const std::string path = ::testing::TempDir() + "scalfrag_io_test.tns";
  write_tns_file(path, t);
  const CooTensor back = read_tns_file(path, t.dims());
  EXPECT_EQ(back.nnz(), t.nnz());
  std::remove(path.c_str());
}

TEST(IoTns, MissingFileThrows) {
  EXPECT_THROW(read_tns_file("/nonexistent/dir/x.tns"), Error);
}

}  // namespace
}  // namespace scalfrag
