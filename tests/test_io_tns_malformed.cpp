// Hardened .tns parser tests: every class of malformed input must be
// rejected with a typed scalfrag::Error naming the offending line, and
// strictness must not break well-formed files.

#include <gtest/gtest.h>

#include <sstream>

#include "tensor/io_tns.hpp"

namespace scalfrag {
namespace {

std::string error_text(const std::string& tns,
                       const std::vector<index_t>& dims_hint = {},
                       std::optional<nnz_t> expected_nnz = std::nullopt) {
  std::istringstream in(tns);
  try {
    read_tns(in, dims_hint, expected_nnz);
  } catch (const Error& e) {
    return e.what();
  }
  return {};
}

TEST(IoTnsMalformed, TruncatedLines) {
  // A bare value with no index, and a line missing its value.
  EXPECT_THROW(
      { std::istringstream in("3.5\n"); read_tns(in); }, Error);
  EXPECT_THROW(
      { std::istringstream in("1 2 3 1.0\n1 2 3\n"); read_tns(in); }, Error);
  // The error names the offending line.
  EXPECT_NE(error_text("1 2 3 1.0\n1 2 3\n").find("line 2"),
            std::string::npos);
}

TEST(IoTnsMalformed, NonNumericFields) {
  EXPECT_THROW(
      { std::istringstream in("a b 1.0\n"); read_tns(in); }, Error);
  EXPECT_THROW(
      { std::istringstream in("1 2 oops\n"); read_tns(in); }, Error);
  // Trailing garbage glued onto an otherwise-valid field must not be
  // silently truncated (the old stream-extraction parser accepted it).
  EXPECT_THROW(
      { std::istringstream in("1x 2 1.0\n"); read_tns(in); }, Error);
  EXPECT_THROW(
      { std::istringstream in("1 2 1.0junk\n"); read_tns(in); }, Error);
}

TEST(IoTnsMalformed, BadIndices) {
  // Zero and negative indices (.tns is 1-based).
  EXPECT_THROW(
      { std::istringstream in("0 1 1.0\n"); read_tns(in); }, Error);
  EXPECT_THROW(
      { std::istringstream in("1 -2 1.0\n"); read_tns(in); }, Error);
  // Fractional index.
  EXPECT_THROW(
      { std::istringstream in("1.5 1 1.0\n"); read_tns(in); }, Error);
  // Larger than the 32-bit index type.
  EXPECT_THROW(
      { std::istringstream in("999999999999999999999 1 1.0\n"); read_tns(in); },
      Error);
  EXPECT_THROW(
      { std::istringstream in("4294967297 1 1.0\n"); read_tns(in); }, Error);
}

TEST(IoTnsMalformed, IndexOutsideDimsHint) {
  std::istringstream in("1 6 1.0\n");
  EXPECT_THROW(read_tns(in, {5, 5}), Error);
  const std::string msg = error_text("1 1 1.0\n2 6 2.0\n", {5, 5});
  EXPECT_NE(msg.find("line 2"), std::string::npos);
  EXPECT_NE(msg.find("exceeds dimension 5"), std::string::npos);
}

TEST(IoTnsMalformed, NonFiniteValues) {
  for (const char* text : {"1 1 nan\n", "1 1 inf\n", "1 1 -inf\n"}) {
    std::istringstream in(text);
    EXPECT_THROW(read_tns(in), Error) << text;
  }
}

TEST(IoTnsMalformed, NnzCountMismatch) {
  std::istringstream short_file("1 1 1.0\n2 2 2.0\n");
  EXPECT_THROW(read_tns(short_file, {}, nnz_t{3}), Error);
  std::istringstream long_file("1 1 1.0\n2 2 2.0\n");
  EXPECT_THROW(read_tns(long_file, {}, nnz_t{1}), Error);
  std::istringstream exact("1 1 1.0\n2 2 2.0\n");
  EXPECT_EQ(read_tns(exact, {}, nnz_t{2}).nnz(), 2u);
  std::istringstream comments_ignored("# header\n1 1 1.0\n\n2 2 2.0\n");
  EXPECT_EQ(read_tns(comments_ignored, {}, nnz_t{2}).nnz(), 2u);
}

TEST(IoTnsMalformed, OrderLimits) {
  // 9 index columns exceeds kMaxOrder = 8.
  std::istringstream in("1 1 1 1 1 1 1 1 1 1.0\n");
  EXPECT_THROW(read_tns(in), Error);
  std::vector<index_t> hint(kMaxOrder + 1, 4);
  std::istringstream in2("1 1 1 1 1 1 1 1 1 1.0\n");
  EXPECT_THROW(read_tns(in2, hint), Error);
}

TEST(IoTnsMalformed, StrictParserStillAcceptsValidInput) {
  std::istringstream in(
      "# comment\n"
      "1 2 3 1.5\n"
      "  4   1   2   -2.25e-1  # inline comment\n"
      "\t2\t2\t2\t3\n");
  const CooTensor t = read_tns(in);
  EXPECT_EQ(t.order(), 3);
  EXPECT_EQ(t.nnz(), 3u);
  EXPECT_FLOAT_EQ(t.value(1), -0.225f);
  EXPECT_FLOAT_EQ(t.value(2), 3.0f);
}

TEST(IoTnsMalformed, ScientificNotationValuesRoundTrip) {
  CooTensor t({3, 3});
  t.push({0, 1}, 1.25e-6f);
  t.push({2, 2}, -4.0e5f);
  std::ostringstream out;
  write_tns(out, t);
  std::istringstream in(out.str());
  const CooTensor back = read_tns(in, t.dims(), t.nnz());
  ASSERT_EQ(back.nnz(), 2u);
  EXPECT_FLOAT_EQ(back.value(0), 1.25e-6f);
  EXPECT_FLOAT_EQ(back.value(1), -4.0e5f);
}

}  // namespace
}  // namespace scalfrag
