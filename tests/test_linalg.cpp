// Dense linear algebra tests: products against hand calculations,
// eigendecomposition and pseudo-inverse properties.

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/linalg.hpp"

namespace scalfrag {
namespace {

DenseMatrix from_rows(std::initializer_list<std::initializer_list<double>> rows) {
  const auto r = static_cast<index_t>(rows.size());
  const auto c = static_cast<index_t>(rows.begin()->size());
  DenseMatrix m(r, c);
  index_t i = 0;
  for (const auto& row : rows) {
    index_t j = 0;
    for (double v : row) m(i, j++) = static_cast<value_t>(v);
    ++i;
  }
  return m;
}

TEST(Linalg, MatmulKnownResult) {
  const auto a = from_rows({{1, 2}, {3, 4}});
  const auto b = from_rows({{5, 6}, {7, 8}});
  const auto c = linalg::matmul(a, b);
  EXPECT_FLOAT_EQ(c(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c(1, 1), 50.0f);
}

TEST(Linalg, MatmulShapeMismatchThrows) {
  const auto a = from_rows({{1, 2, 3}});
  const auto b = from_rows({{1, 2}});
  EXPECT_THROW(linalg::matmul(a, b), Error);
}

TEST(Linalg, MatmulTnEqualsTransposeThenMultiply) {
  Rng rng(5);
  DenseMatrix a(7, 3), b(7, 4);
  a.randomize(rng);
  b.randomize(rng);
  const auto direct = linalg::matmul_tn(a, b);
  const auto via_t = linalg::matmul(linalg::transpose(a), b);
  EXPECT_LT(DenseMatrix::max_abs_diff(direct, via_t), 1e-4);
}

TEST(Linalg, GramIsSymmetricPsd) {
  Rng rng(6);
  DenseMatrix a(20, 5);
  a.randomize(rng);
  const auto g = linalg::gram(a);
  ASSERT_EQ(g.rows(), 5u);
  ASSERT_EQ(g.cols(), 5u);
  for (index_t i = 0; i < 5; ++i) {
    EXPECT_GE(g(i, i), 0.0f);
    for (index_t j = 0; j < 5; ++j) {
      EXPECT_NEAR(g(i, j), g(j, i), 1e-4);
    }
  }
}

TEST(Linalg, HadamardInplace) {
  auto a = from_rows({{1, 2}, {3, 4}});
  const auto b = from_rows({{2, 3}, {4, 5}});
  linalg::hadamard_inplace(a, b);
  EXPECT_FLOAT_EQ(a(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(a(1, 1), 20.0f);
}

TEST(Linalg, TransposeRoundTrip) {
  Rng rng(7);
  DenseMatrix a(4, 9);
  a.randomize(rng);
  const auto tt = linalg::transpose(linalg::transpose(a));
  EXPECT_LT(DenseMatrix::max_abs_diff(a, tt), 1e-7);
}

TEST(Linalg, JacobiEigenDiagonalMatrix) {
  const auto m = from_rows({{3, 0, 0}, {0, 1, 0}, {0, 0, 2}});
  DenseMatrix vec;
  auto w = linalg::jacobi_eigen_symmetric(m, vec);
  std::sort(w.begin(), w.end());
  EXPECT_NEAR(w[0], 1.0, 1e-6);
  EXPECT_NEAR(w[1], 2.0, 1e-6);
  EXPECT_NEAR(w[2], 3.0, 1e-6);
}

TEST(Linalg, JacobiEigenReconstructs) {
  // m = V diag(w) Vᵀ must reproduce the input.
  Rng rng(8);
  DenseMatrix b(6, 6);
  b.randomize(rng);
  const auto m = linalg::gram(b);  // symmetric PSD
  DenseMatrix vec;
  const auto w = linalg::jacobi_eigen_symmetric(m, vec);
  DenseMatrix recon(6, 6);
  for (index_t i = 0; i < 6; ++i) {
    for (index_t j = 0; j < 6; ++j) {
      double s = 0.0;
      for (index_t k = 0; k < 6; ++k) {
        s += static_cast<double>(vec(i, k)) * w[k] *
             static_cast<double>(vec(j, k));
      }
      recon(i, j) = static_cast<value_t>(s);
    }
  }
  EXPECT_LT(DenseMatrix::max_abs_diff(m, recon), 1e-3);
}

TEST(Linalg, PinvOfInvertibleIsInverse) {
  const auto m = from_rows({{4, 1}, {1, 3}});
  const auto inv = linalg::pinv_spd(m);
  const auto prod = linalg::matmul(m, inv);
  EXPECT_NEAR(prod(0, 0), 1.0, 1e-4);
  EXPECT_NEAR(prod(0, 1), 0.0, 1e-4);
  EXPECT_NEAR(prod(1, 0), 0.0, 1e-4);
  EXPECT_NEAR(prod(1, 1), 1.0, 1e-4);
}

TEST(Linalg, PinvSatisfiesMoorePenroseOnSingular) {
  // Rank-1 PSD matrix: m = v vᵀ.
  const auto m = from_rows({{1, 2}, {2, 4}});
  const auto p = linalg::pinv_spd(m);
  // M P M = M.
  const auto mpm = linalg::matmul(linalg::matmul(m, p), m);
  EXPECT_LT(DenseMatrix::max_abs_diff(m, mpm), 1e-3);
  // P M P = P.
  const auto pmp = linalg::matmul(linalg::matmul(p, m), p);
  EXPECT_LT(DenseMatrix::max_abs_diff(p, pmp), 1e-3);
}

TEST(Linalg, FrobeniusNorm) {
  const auto m = from_rows({{3, 0}, {0, 4}});
  EXPECT_NEAR(linalg::frobenius_norm(m), 5.0, 1e-6);
}

TEST(Linalg, MaxAbs) {
  const auto m = from_rows({{-7, 2}, {3, 4}});
  EXPECT_NEAR(linalg::max_abs(m), 7.0, 1e-6);
}

TEST(Linalg, ColumnNorms) {
  const auto m = from_rows({{3, 0}, {4, 1}});
  const auto n = linalg::column_norms(m);
  EXPECT_NEAR(n[0], 5.0, 1e-5);
  EXPECT_NEAR(n[1], 1.0, 1e-5);
}

TEST(DenseMatrixTest, MaxAbsDiffRequiresSameShape) {
  DenseMatrix a(2, 2), b(2, 3);
  EXPECT_THROW(DenseMatrix::max_abs_diff(a, b), Error);
}

TEST(DenseMatrixTest, RandomizeFillsUnitInterval) {
  Rng rng(9);
  DenseMatrix a(10, 10);
  a.randomize(rng);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_GE(a.data()[i], 0.0f);
    EXPECT_LT(a.data()[i], 1.0f);
  }
}

}  // namespace
}  // namespace scalfrag
