// ML subsystem tests: dataset mechanics, each regressor's learning
// ability on synthetic functions, serialization, metrics.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/rng.hpp"
#include "ml/adaboost.hpp"
#include "ml/bagging.hpp"
#include "ml/dtree.hpp"
#include "ml/knn.hpp"
#include "ml/metrics.hpp"
#include "ml/serialize.hpp"
#include "ml/svr.hpp"

namespace scalfrag::ml {
namespace {

/// y = step function of x0 plus mild noise — trees nail this.
Dataset step_data(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Dataset d(2);
  for (std::size_t i = 0; i < n; ++i) {
    const double x0 = rng.uniform(0.0, 1.0);
    const double x1 = rng.uniform(0.0, 1.0);
    const double y = (x0 < 0.5 ? 1.0 : 5.0) + 0.01 * rng.normal();
    const double row[2] = {x0, x1};
    d.add(row, y);
  }
  return d;
}

/// Smooth nonlinear target.
Dataset smooth_data(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Dataset d(3);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.uniform(-2.0, 2.0);
    const double b = rng.uniform(-2.0, 2.0);
    const double c = rng.uniform(-2.0, 2.0);
    const double y = std::sin(a) + b * b - 0.5 * c;
    const double row[3] = {a, b, c};
    d.add(row, y);
  }
  return d;
}

double mean_model_rmse(const Dataset& test) {
  double mean = 0.0;
  for (double t : test.targets()) mean += t;
  mean /= static_cast<double>(test.size());
  std::vector<double> pred(test.size(), mean);
  return rmse(test.targets(), pred);
}

TEST(DatasetTest, AddAndRowAccess) {
  Dataset d(2);
  const double r1[2] = {1.0, 2.0};
  d.add(r1, 10.0);
  EXPECT_EQ(d.size(), 1u);
  EXPECT_EQ(d.dim(), 2u);
  EXPECT_DOUBLE_EQ(d.row(0)[1], 2.0);
  EXPECT_DOUBLE_EQ(d.target(0), 10.0);
  const double bad[3] = {1, 2, 3};
  EXPECT_THROW(d.add(bad, 0.0), Error);
}

TEST(DatasetTest, SplitPartitionsRows) {
  const Dataset d = step_data(100, 1);
  auto [train, test] = d.train_test_split(0.25, 42);
  EXPECT_EQ(train.size(), 75u);
  EXPECT_EQ(test.size(), 25u);
  EXPECT_EQ(train.dim(), d.dim());
}

TEST(DatasetTest, ColumnStatsStandardize) {
  Dataset d(1);
  for (double v : {2.0, 4.0, 6.0}) {
    d.add(std::span<const double>(&v, 1), 0.0);
  }
  std::vector<double> mean, sd;
  d.column_stats(mean, sd);
  EXPECT_DOUBLE_EQ(mean[0], 4.0);
  EXPECT_NEAR(sd[0], std::sqrt(8.0 / 3.0), 1e-12);
}

TEST(DecisionTree, LearnsStepFunctionExactly) {
  const Dataset train = step_data(400, 2);
  DecisionTreeRegressor tree;
  tree.fit(train);
  const double lo[2] = {0.2, 0.5};
  const double hi[2] = {0.9, 0.5};
  EXPECT_NEAR(tree.predict(lo), 1.0, 0.1);
  EXPECT_NEAR(tree.predict(hi), 5.0, 0.1);
  EXPECT_TRUE(tree.trained());
  EXPECT_GT(tree.node_count(), 1u);
}

TEST(DecisionTree, RespectsMaxDepth) {
  DTreeConfig cfg;
  cfg.max_depth = 1;
  DecisionTreeRegressor tree(cfg);
  tree.fit(smooth_data(200, 3));
  EXPECT_LE(tree.depth(), 1);
  EXPECT_LE(tree.node_count(), 3u);
}

TEST(DecisionTree, BeatsMeanModelOnSmoothData) {
  const Dataset d = smooth_data(600, 4);
  auto [train, test] = d.train_test_split(0.3, 5);
  DecisionTreeRegressor tree;
  tree.fit(train);
  const double tree_rmse = rmse(test.targets(), tree.predict_all(test));
  EXPECT_LT(tree_rmse, 0.5 * mean_model_rmse(test));
}

TEST(DecisionTree, WeightedFitFollowsHeavySamples) {
  // Two clusters; put all the weight on the second.
  Dataset d(1);
  for (int i = 0; i < 10; ++i) {
    const double x = 0.1;
    d.add(std::span<const double>(&x, 1), 0.0);
  }
  const double x2 = 0.9;
  d.add(std::span<const double>(&x2, 1), 100.0);
  std::vector<double> w(11, 1e-9);
  w[10] = 1.0;
  DTreeConfig cfg;
  cfg.max_depth = 0;  // single leaf → weighted mean
  DecisionTreeRegressor tree(cfg);
  tree.fit_weighted(d, w);
  const double q = 0.5;
  EXPECT_NEAR(tree.predict(std::span<const double>(&q, 1)), 100.0, 0.1);
}

TEST(DecisionTree, PredictBeforeFitThrows) {
  DecisionTreeRegressor tree;
  const double x[1] = {0.0};
  EXPECT_THROW(tree.predict(x), Error);
}

TEST(DecisionTree, SaveLoadRoundTripPreservesPredictions) {
  const Dataset train = smooth_data(300, 6);
  DecisionTreeRegressor tree;
  tree.fit(train);
  std::stringstream ss;
  tree.save(ss);
  const DecisionTreeRegressor loaded = DecisionTreeRegressor::load(ss);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(tree.predict(train.row(i)), loaded.predict(train.row(i)));
  }
}

TEST(Serialize, FileRoundTrip) {
  const Dataset train = step_data(100, 7);
  DecisionTreeRegressor tree;
  tree.fit(train);
  const std::string path = ::testing::TempDir() + "scalfrag_tree.txt";
  save_tree_file(path, tree);
  const auto loaded = load_tree_file(path);
  EXPECT_DOUBLE_EQ(tree.predict(train.row(0)), loaded.predict(train.row(0)));
  std::remove(path.c_str());
  EXPECT_THROW(load_tree_file("/nonexistent/t.txt"), Error);
}

TEST(Bagging, BeatsMeanModel) {
  const Dataset d = smooth_data(600, 8);
  auto [train, test] = d.train_test_split(0.3, 9);
  BaggingRegressor bag;
  bag.fit(train);
  EXPECT_EQ(bag.size(), 24u);
  const double e = rmse(test.targets(), bag.predict_all(test));
  EXPECT_LT(e, 0.5 * mean_model_rmse(test));
}

TEST(AdaBoost, BeatsMeanModel) {
  const Dataset d = smooth_data(600, 10);
  auto [train, test] = d.train_test_split(0.3, 11);
  AdaBoostR2Regressor ada;
  ada.fit(train);
  EXPECT_GE(ada.size(), 1u);
  const double e = rmse(test.targets(), ada.predict_all(test));
  EXPECT_LT(e, 0.6 * mean_model_rmse(test));
}

TEST(LinearSvr, RecoversLinearFunction) {
  Rng rng(12);
  Dataset d(2);
  for (int i = 0; i < 500; ++i) {
    const double a = rng.uniform(-1, 1), b = rng.uniform(-1, 1);
    const double row[2] = {a, b};
    d.add(row, 3.0 * a - 2.0 * b + 1.0);
  }
  LinearSvrRegressor svr;
  svr.fit(d);
  const double x[2] = {0.5, -0.5};
  EXPECT_NEAR(svr.predict(x), 3.5, 0.3);
}

TEST(Knn, InterpolatesLocally) {
  Dataset d(1);
  for (double x = 0.0; x < 10.0; x += 0.5) {
    d.add(std::span<const double>(&x, 1), 2.0 * x);
  }
  KnnRegressor knn(KnnConfig{.k = 3});
  knn.fit(d);
  const double q = 5.0;
  EXPECT_NEAR(knn.predict(std::span<const double>(&q, 1)), 10.0, 1.5);
}

TEST(Metrics, KnownValues) {
  const std::vector<double> t{1.0, 2.0, 4.0};
  const std::vector<double> p{1.0, 1.0, 5.0};
  EXPECT_NEAR(mae(t, p), (0.0 + 1.0 + 1.0) / 3.0, 1e-12);
  EXPECT_NEAR(rmse(t, p), std::sqrt(2.0 / 3.0), 1e-12);
  EXPECT_NEAR(mape(t, p), 100.0 * (0.0 + 0.5 + 0.25) / 3.0, 1e-9);
  EXPECT_NEAR(r2(t, t), 1.0, 1e-12);
  EXPECT_LT(r2(t, p), 1.0);
  EXPECT_THROW(mape({}, {}), Error);
  EXPECT_THROW(mae({1.0}, {1.0, 2.0}), Error);
}

// All model kinds must at least learn the step function decently —
// a parameterized smoke property over the whole model zoo.
class AnyModelLearns : public ::testing::TestWithParam<int> {};

TEST_P(AnyModelLearns, StepFunctionRmseBelowMeanModel) {
  const Dataset d = step_data(500, 13);
  auto [train, test] = d.train_test_split(0.3, 14);
  std::unique_ptr<Regressor> model;
  switch (GetParam()) {
    case 0:
      model = std::make_unique<DecisionTreeRegressor>();
      break;
    case 1:
      model = std::make_unique<BaggingRegressor>();
      break;
    case 2:
      model = std::make_unique<AdaBoostR2Regressor>();
      break;
    case 3:
      model = std::make_unique<LinearSvrRegressor>();
      break;
    default:
      model = std::make_unique<KnnRegressor>();
  }
  model->fit(train);
  const double e = rmse(test.targets(), model->predict_all(test));
  EXPECT_LT(e, mean_model_rmse(test)) << model->name();
}

INSTANTIATE_TEST_SUITE_P(ModelZoo, AnyModelLearns,
                         ::testing::Values(0, 1, 2, 3, 4));

}  // namespace
}  // namespace scalfrag::ml
