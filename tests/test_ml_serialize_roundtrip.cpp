// Round-trip property tests for model serialization: train a
// DecisionTree, AdaBoost, and Bagging model on a real autotuner sweep
// dataset, serialize/deserialize each (stream and file), and require
// bit-identical predictions on every row.

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "ml/serialize.hpp"
#include "scalfrag/autotune.hpp"

namespace scalfrag::ml {
namespace {

const Dataset& sweep_dataset() {
  static const Dataset data =
      AutoTuner::build_dataset(gpusim::DeviceSpec::rtx3090(), 16, 3, 404);
  return data;
}

template <class Model>
void expect_identical_predictions(const Model& a, const Model& b) {
  const Dataset& data = sweep_dataset();
  for (std::size_t i = 0; i < data.size(); ++i) {
    // Bit-identical, not approximately equal: save() writes doubles at
    // precision 17, which round-trips IEEE-754 exactly.
    ASSERT_EQ(a.predict(data.row(i)), b.predict(data.row(i)))
        << "prediction diverged on row " << i;
  }
}

TEST(MlSerializeRoundTrip, DecisionTreeStreamAndFile) {
  DecisionTreeRegressor tree;
  tree.fit(sweep_dataset());
  ASSERT_TRUE(tree.trained());

  std::stringstream buf;
  tree.save(buf);
  const DecisionTreeRegressor back = DecisionTreeRegressor::load(buf);
  EXPECT_EQ(back.node_count(), tree.node_count());
  EXPECT_EQ(back.depth(), tree.depth());
  expect_identical_predictions(tree, back);

  const std::string path = ::testing::TempDir() + "sf_tree_rt.txt";
  save_tree_file(path, tree);
  expect_identical_predictions(tree, load_tree_file(path));
  std::remove(path.c_str());
}

TEST(MlSerializeRoundTrip, AdaBoostStreamAndFile) {
  AdaBoostR2Regressor model(AdaBoostConfig{.n_estimators = 8});
  model.fit(sweep_dataset());
  ASSERT_GT(model.size(), 0u);

  std::stringstream buf;
  model.save(buf);
  const AdaBoostR2Regressor back = AdaBoostR2Regressor::load(buf);
  EXPECT_EQ(back.size(), model.size());
  expect_identical_predictions(model, back);

  const std::string path = ::testing::TempDir() + "sf_ada_rt.txt";
  save_adaboost_file(path, model);
  expect_identical_predictions(model, load_adaboost_file(path));
  std::remove(path.c_str());
}

TEST(MlSerializeRoundTrip, BaggingStreamAndFile) {
  BaggingConfig cfg;
  cfg.n_estimators = 6;
  BaggingRegressor model(cfg);
  model.fit(sweep_dataset());
  ASSERT_EQ(model.size(), 6u);

  std::stringstream buf;
  model.save(buf);
  const BaggingRegressor back = BaggingRegressor::load(buf);
  EXPECT_EQ(back.size(), model.size());
  expect_identical_predictions(model, back);

  const std::string path = ::testing::TempDir() + "sf_bag_rt.txt";
  save_bagging_file(path, model);
  expect_identical_predictions(model, load_bagging_file(path));
  std::remove(path.c_str());
}

TEST(MlSerializeRoundTrip, ModelsComposeOnOneStream) {
  // All three formats are stream-composable: they can be concatenated
  // into a single archive and read back in order.
  DecisionTreeRegressor tree;
  tree.fit(sweep_dataset());
  AdaBoostR2Regressor ada(AdaBoostConfig{.n_estimators = 3});
  ada.fit(sweep_dataset());
  BaggingConfig bag_cfg;
  bag_cfg.n_estimators = 3;
  BaggingRegressor bag(bag_cfg);
  bag.fit(sweep_dataset());

  std::stringstream buf;
  tree.save(buf);
  ada.save(buf);
  bag.save(buf);

  expect_identical_predictions(tree, DecisionTreeRegressor::load(buf));
  expect_identical_predictions(ada, AdaBoostR2Regressor::load(buf));
  expect_identical_predictions(bag, BaggingRegressor::load(buf));
}

TEST(MlSerializeRoundTrip, LoadRejectsWrongOrCorruptHeader) {
  std::istringstream wrong_kind("dtree 0 0\n");
  EXPECT_THROW(AdaBoostR2Regressor::load(wrong_kind), Error);
  std::istringstream garbage("not-a-model\n");
  EXPECT_THROW(BaggingRegressor::load(garbage), Error);
  std::istringstream truncated("adaboost 4\n0.5 0.5\n");
  EXPECT_THROW(AdaBoostR2Regressor::load(truncated), Error);
  EXPECT_THROW(load_adaboost_file("/nonexistent/dir/m.txt"), Error);
}

}  // namespace
}  // namespace scalfrag::ml
