// ModeViews tests: the single-sort permutation views reproduce each
// mode's sorted order exactly, the gather_limit fallback still works,
// and the resident-bytes gauge tracks the object's lifetime.

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "obs/metrics.hpp"
#include "tensor/generator.hpp"
#include "tensor/mode_views.hpp"
#include "tensor/mttkrp_par.hpp"
#include "tensor/mttkrp_ref.hpp"

namespace scalfrag {
namespace {

CooTensor skewed_tensor(std::uint64_t seed) {
  GeneratorConfig g{.dims = {48, 96, 64},
                    .nnz = 6000,
                    .skew = {1.5, 1.2, 1.0},
                    .seed = seed};
  return generate_coo(g);
}

void expect_same_order(const CooSpan& got, const CooTensor& want) {
  ASSERT_EQ(got.nnz(), want.nnz());
  for (nnz_t e = 0; e < want.nnz(); ++e) {
    for (order_t m = 0; m < want.order(); ++m) {
      ASSERT_EQ(got.index(m, e), want.index(m, e))
          << "entry " << e << " mode " << static_cast<int>(m);
    }
    ASSERT_EQ(got.value(e), want.value(e)) << "entry " << e;
  }
}

TEST(ModeViews, ViewsMatchPerModeSortExactly) {
  const CooTensor t = skewed_tensor(601);
  const ModeViews views(t);
  ASSERT_FALSE(views.materialized());
  for (order_t m = 0; m < t.order(); ++m) {
    CooTensor sorted = t;
    sorted.sort_by_mode(m);
    // Same entries in the same logical order — index-by-index, not just
    // "is sorted": the counting-sort derivation must reproduce
    // sort_by_mode(m) including tie order.
    expect_same_order(views.view(m), sorted);
    EXPECT_TRUE(views.view(m).is_sorted_by_mode(m));
  }
  // Mode 0 aliases the canonical copy directly (no gather).
  EXPECT_FALSE(views.view(0).is_gather());
  EXPECT_EQ(views.view(0).index_base(0),
            views.canonical().mode_indices(0).data());
  for (order_t m = 1; m < t.order(); ++m) {
    EXPECT_TRUE(views.view(m).is_gather());
  }
}

TEST(ModeViews, AcceptsUnsortedInput) {
  CooTensor t({6, 5, 4});
  t.push({5, 0, 3}, 1.0f);
  t.push({0, 4, 1}, 2.0f);
  t.push({2, 2, 2}, 3.0f);
  t.push({0, 1, 3}, 4.0f);
  ASSERT_FALSE(t.is_sorted_by_mode(0));
  const ModeViews views(t);
  for (order_t m = 0; m < t.order(); ++m) {
    CooTensor sorted = t;
    sorted.sort_by_mode(m);
    expect_same_order(views.view(m), sorted);
  }
}

TEST(ModeViews, GatherLimitFallsBackToMaterializedCopies) {
  const CooTensor t = skewed_tensor(602);
  // Force the fallback with a limit below nnz.
  const ModeViews views(t, nullptr, /*gather_limit=*/t.nnz() - 1);
  ASSERT_TRUE(views.materialized());
  for (order_t m = 0; m < t.order(); ++m) {
    CooTensor sorted = t;
    sorted.sort_by_mode(m);
    expect_same_order(views.view(m), sorted);
    EXPECT_FALSE(views.view(m).is_gather());
  }
  // No saving in the fallback: the footprint matches the legacy bound.
  EXPECT_GE(views.resident_bytes(), ModeViews::legacy_copies_bytes(t));
}

TEST(ModeViews, FallbackIsBitIdenticalToGatherViews) {
  const CooTensor t = skewed_tensor(607);
  // gather_limit 0 forces the materialized fallback on any input.
  const ModeViews fallback(t, nullptr, /*gather_limit=*/0);
  ASSERT_TRUE(fallback.materialized());
  const ModeViews gathered(t);
  ASSERT_FALSE(gathered.materialized());

  // Exactly the canonical copy plus order-1 sorted copies — the
  // fallback used to allocate a dead (empty) slot for mode 0.
  EXPECT_EQ(fallback.resident_bytes(),
            static_cast<std::size_t>(t.order()) * t.bytes());

  Rng rng(608);
  FactorList f;
  for (order_t m = 0; m < t.order(); ++m) {
    DenseMatrix a(t.dim(m), 8);
    a.randomize(rng);
    f.push_back(std::move(a));
  }
  HostExecParams opt;
  opt.strategy = HostStrategy::Serial;
  for (order_t m = 0; m < t.order(); ++m) {
    // Same logical entry order through the same serial kernel: any
    // difference is a fallback indexing bug, so compare bit-for-bit.
    const DenseMatrix got = mttkrp_coo_par(fallback.view(m), f, m, opt);
    const DenseMatrix want = mttkrp_coo_par(gathered.view(m), f, m, opt);
    ASSERT_EQ(got.rows(), want.rows());
    ASSERT_EQ(got.cols(), want.cols());
    EXPECT_EQ(std::memcmp(got.data(), want.data(),
                          got.size() * sizeof(value_t)),
              0)
        << "mode " << static_cast<int>(m);
  }
}

TEST(ModeViews, HalvesResidentBytesForThreeModes) {
  const CooTensor t = skewed_tensor(603);
  const ModeViews views(t);
  // 3-mode arithmetic: canonical 16B/nnz + 2 perms at 4B/nnz = 24B/nnz
  // against 3 copies at 16B/nnz = 48B/nnz — exactly half.
  EXPECT_EQ(views.resident_bytes() * 2, ModeViews::legacy_copies_bytes(t));
}

TEST(ModeViews, MttkrpOnViewMatchesReferenceOnSortedCopy) {
  const CooTensor t = skewed_tensor(604);
  const ModeViews views(t);
  Rng rng(605);
  FactorList f;
  for (order_t m = 0; m < t.order(); ++m) {
    DenseMatrix a(t.dim(m), 8);
    a.randomize(rng);
    f.push_back(std::move(a));
  }
  for (order_t m = 0; m < t.order(); ++m) {
    const DenseMatrix got = mttkrp_coo_par(views.view(m), f, m);
    const DenseMatrix want = mttkrp_coo_ref(t, f, m);
    EXPECT_LT(DenseMatrix::max_abs_diff(got, want), 2e-3);
  }
}

TEST(ModeViews, ResidentGaugeTracksLifetimeAndPeak) {
  const CooTensor t = skewed_tensor(606);
  obs::MetricsRegistry met;
  const std::string peak = std::string(ModeViews::kResidentGauge) + "_peak";
  double one = 0.0;
  {
    ModeViews a(t, &met);
    one = static_cast<double>(a.resident_bytes());
    EXPECT_EQ(met.gauge(ModeViews::kResidentGauge), one);
    {
      const ModeViews b(t, &met);
      EXPECT_EQ(met.gauge(ModeViews::kResidentGauge), 2 * one);
      EXPECT_EQ(met.gauge(peak), 2 * one);
    }
    // b released; the peak remembers the high-water mark.
    EXPECT_EQ(met.gauge(ModeViews::kResidentGauge), one);
    EXPECT_EQ(met.gauge(peak), 2 * one);

    // Moving transfers the registration — no double release.
    ModeViews c(std::move(a));
    EXPECT_EQ(met.gauge(ModeViews::kResidentGauge), one);
  }
  EXPECT_EQ(met.gauge(ModeViews::kResidentGauge), 0.0);
  EXPECT_EQ(met.gauge(peak), 2 * one);
}

}  // namespace
}  // namespace scalfrag
