// MTTKRP reference correctness: brute-force dense cross-check,
// algebraic properties (linearity, permutation invariance), and
// segment-sum decomposition — the invariant ScalFrag's tiling relies on.

#include <gtest/gtest.h>

#include "tensor/generator.hpp"
#include "tensor/mttkrp_ref.hpp"

namespace scalfrag {
namespace {

FactorList random_factors(const CooTensor& t, index_t rank,
                          std::uint64_t seed) {
  Rng rng(seed);
  FactorList f;
  for (order_t m = 0; m < t.order(); ++m) {
    DenseMatrix a(t.dim(m), rank);
    a.randomize(rng);
    f.push_back(std::move(a));
  }
  return f;
}

/// Brute-force MTTKRP by literally materializing Eq. 4's sum.
DenseMatrix brute_force(const CooTensor& t, const FactorList& factors,
                        order_t mode) {
  const index_t rank = factors[0].cols();
  DenseMatrix out(t.dim(mode), rank);
  for (nnz_t e = 0; e < t.nnz(); ++e) {
    for (index_t f = 0; f < rank; ++f) {
      double prod = t.value(e);
      for (order_t m = 0; m < t.order(); ++m) {
        if (m == mode) continue;
        prod *= factors[m](t.index(m, e), f);
      }
      out(t.index(mode, e), f) += static_cast<value_t>(prod);
    }
  }
  return out;
}

TEST(MttkrpRef, MatchesHandComputed2x2) {
  // X(0,0)=1, X(1,1)=2; B = [[1,2],[3,4]]. Mode-0 MTTKRP with rank 2:
  // M(0,:) = 1 * B(0,:) = (1,2); M(1,:) = 2 * B(1,:) = (6,8).
  CooTensor t({2, 2});
  t.push({0, 0}, 1.0f);
  t.push({1, 1}, 2.0f);
  FactorList f;
  f.emplace_back(2, 2);  // A (unused by mode-0)
  DenseMatrix b(2, 2);
  b(0, 0) = 1;
  b(0, 1) = 2;
  b(1, 0) = 3;
  b(1, 1) = 4;
  f.push_back(b);
  const auto m = mttkrp_coo_ref(t, f, 0);
  EXPECT_FLOAT_EQ(m(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(m(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(m(1, 0), 6.0f);
  EXPECT_FLOAT_EQ(m(1, 1), 8.0f);
}

TEST(MttkrpRef, CheckFactorsRejectsBadShapes) {
  CooTensor t({3, 4, 5});
  t.push({0, 0, 0}, 1.0f);
  FactorList f;
  f.emplace_back(3, 8);
  f.emplace_back(4, 8);
  EXPECT_THROW(check_factors(t, f), Error);  // missing one factor
  f.emplace_back(5, 4);                      // wrong rank
  EXPECT_THROW(check_factors(t, f), Error);
  f[2] = DenseMatrix(5, 8);
  EXPECT_EQ(check_factors(t, f), 8u);
  f[1] = DenseMatrix(3, 8);  // wrong row count
  EXPECT_THROW(check_factors(t, f), Error);
}

TEST(MttkrpRef, AccumulateAddsOntoExisting) {
  CooTensor t({2, 2});
  t.push({0, 0}, 1.0f);
  auto f = random_factors(t, 4, 1);
  DenseMatrix out(2, 4, 1.0f);
  mttkrp_coo_ref(t, f, 0, out, /*accumulate=*/true);
  for (index_t j = 0; j < 4; ++j) {
    EXPECT_FLOAT_EQ(out(1, j), 1.0f);  // untouched row keeps prior value
    EXPECT_GT(out(0, j), 1.0f - 1e-6);
  }
}

TEST(MttkrpRef, LinearInTensorValues) {
  const CooTensor t = make_frostt_tensor("nips", 1.0 / 8192, 3);
  auto f = random_factors(t, 8, 2);
  const auto m1 = mttkrp_coo_ref(t, f, 0);
  CooTensor t2 = t;
  for (auto& v : t2.values()) v *= 3.0f;
  const auto m3 = mttkrp_coo_ref(t2, f, 0);
  double max_rel = 0.0;
  for (index_t i = 0; i < m1.rows(); ++i) {
    for (index_t j = 0; j < m1.cols(); ++j) {
      max_rel = std::max(max_rel,
                         std::abs(3.0 * m1(i, j) - m3(i, j)) /
                             std::max(1e-6, std::abs(3.0 * m1(i, j))));
    }
  }
  EXPECT_LT(max_rel, 1e-4);
}

TEST(MttkrpRef, InvariantToEntryOrder) {
  GeneratorConfig g{.dims = {32, 40, 24}, .nnz = 600, .skew = {}, .seed = 4};
  CooTensor t = generate_coo(g);
  auto f = random_factors(t, 8, 5);
  const auto sorted0 = mttkrp_coo_ref(t, f, 1);
  t.sort_by_mode(2);  // different permutation of the same entries
  const auto sorted2 = mttkrp_coo_ref(t, f, 1);
  EXPECT_LT(DenseMatrix::max_abs_diff(sorted0, sorted2), 1e-3);
}

TEST(MttkrpRef, SegmentsSumToWhole) {
  CooTensor t = make_frostt_tensor("uber", 1.0 / 4096, 6);
  t.sort_by_mode(0);
  auto f = random_factors(t, 8, 7);
  const auto whole = mttkrp_coo_ref(t, f, 0);

  DenseMatrix acc(t.dim(0), 8);
  const nnz_t third = t.nnz() / 3;
  for (int s = 0; s < 3; ++s) {
    const nnz_t lo = s * third;
    const nnz_t hi = s == 2 ? t.nnz() : (s + 1) * third;
    const CooTensor seg = t.extract(lo, hi);
    mttkrp_coo_ref(seg, f, 0, acc, /*accumulate=*/true);
  }
  EXPECT_LT(DenseMatrix::max_abs_diff(whole, acc), 1e-3);
}

TEST(MttkrpRef, FlopCountFormula) {
  CooTensor t({4, 4, 4});
  t.push({0, 0, 0}, 1.0f);
  t.push({1, 1, 1}, 1.0f);
  EXPECT_EQ(mttkrp_flops(t, 16), 2ull * 16 * 2 * 2);  // nnz·2·F·(order-1)
}

// Parameterized brute-force equivalence across order × mode × rank.
class MttkrpBruteForce
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MttkrpBruteForce, ReferenceMatchesBruteForce) {
  const auto [order, mode, rank] = GetParam();
  if (mode >= order) GTEST_SKIP();
  GeneratorConfig g;
  for (int m = 0; m < order; ++m) {
    g.dims.push_back(10 + 6 * m);
    g.skew.push_back(1.0 + 0.3 * m);
  }
  g.nnz = 400;
  g.seed = 40 + order * 7 + mode * 3 + rank;
  const CooTensor t = generate_coo(g);
  const auto f = random_factors(t, static_cast<index_t>(rank), g.seed);
  const auto a = mttkrp_coo_ref(t, f, static_cast<order_t>(mode));
  const auto b = brute_force(t, f, static_cast<order_t>(mode));
  EXPECT_LT(DenseMatrix::max_abs_diff(a, b), 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MttkrpBruteForce,
    ::testing::Combine(::testing::Values(2, 3, 4, 5),
                       ::testing::Values(0, 1, 3),
                       ::testing::Values(1, 8, 32)));

}  // namespace
}  // namespace scalfrag
