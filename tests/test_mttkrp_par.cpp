// Host execution engine tests: the parallel MTTKRP must agree with the
// serial reference across orders, modes, thread counts, strategies, and
// adversarial inputs (duplicates, one-giant-slice skew, unsorted entry
// order, empty/singleton tensors). Also covers CooSpan aliasing (span
// results == extract results) and the parallel CSF walk.
//
// This file builds into scalfrag_par_tests (ctest label "parallel") so
// the ThreadSanitizer preset can run exactly the multithreaded paths.

#include <gtest/gtest.h>

#include "common/thread_pool.hpp"
#include "tensor/generator.hpp"
#include "tensor/mttkrp_par.hpp"

namespace scalfrag {
namespace {

FactorList random_factors(const CooTensor& t, index_t rank,
                          std::uint64_t seed) {
  Rng rng(seed);
  FactorList f;
  for (order_t m = 0; m < t.order(); ++m) {
    DenseMatrix a(t.dim(m), rank);
    a.randomize(rng);
    f.push_back(std::move(a));
  }
  return f;
}

CooTensor skewed_tensor(int order, nnz_t nnz, std::uint64_t seed) {
  GeneratorConfig g;
  for (int m = 0; m < order; ++m) {
    g.dims.push_back(static_cast<index_t>(24 + 10 * m));
    g.skew.push_back(1.0 + 0.4 * m);
  }
  g.nnz = nnz;
  g.seed = seed;
  return generate_coo(g);
}

// ---------------------------------------------------------------------
// Parameterized sweep: order × mode × threads, every strategy, vs ref.

class MttkrpParSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MttkrpParSweep, MatchesReference) {
  const auto [order, mode, threads] = GetParam();
  if (mode >= order) GTEST_SKIP();
  CooTensor t = skewed_tensor(order, 3000, 10 + order * 7 + mode);
  t.sort_by_mode(static_cast<order_t>(mode));
  const auto f = random_factors(t, 8, 11);
  const auto expect = mttkrp_coo_ref(t, f, static_cast<order_t>(mode));

  for (HostStrategy s :
       {HostStrategy::Auto, HostStrategy::Serial, HostStrategy::SliceOwner,
        HostStrategy::PrivateReduce}) {
    HostExecParams opt;
    opt.threads = static_cast<std::size_t>(threads);
    opt.strategy = s;
    opt.grain_nnz = 128;  // well below nnz so parallel paths engage
    const auto got = mttkrp_coo_par(t, f, static_cast<order_t>(mode), opt);
    EXPECT_LT(DenseMatrix::max_abs_diff(expect, got), 1e-3)
        << "order=" << order << " mode=" << mode << " threads=" << threads
        << " strategy=" << host_strategy_name(s);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MttkrpParSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(0, 1, 3),
                       ::testing::Values(1, 2, 0)));  // 0 = all workers

// ---------------------------------------------------------------------
// Strategy-specific behavior.

TEST(MttkrpPar, SerialMatchesReferenceTightly) {
  CooTensor t = skewed_tensor(3, 4000, 21);
  t.sort_by_mode(1);
  const auto f = random_factors(t, 16, 22);
  const auto expect = mttkrp_coo_ref(t, f, 1);
  HostExecParams opt;
  opt.strategy = HostStrategy::Serial;
  const auto got = mttkrp_coo_par(t, f, 1, opt);
  // Same summation order as the reference; the fused inner loops may
  // contract multiply+add into FMA (one rounding fewer per term), so
  // the last bits can differ — but nothing reassociates.
  EXPECT_LT(DenseMatrix::max_abs_diff(expect, got), 1e-4);
}

TEST(MttkrpPar, AutoPicksSerialBelowGrain) {
  CooTensor t = skewed_tensor(3, 100, 23);
  t.sort_by_mode(0);
  HostExecParams opt;
  opt.grain_nnz = 8192;
  EXPECT_EQ(choose_host_strategy(t, 0, opt), HostStrategy::Serial);
}

TEST(MttkrpPar, AutoPicksPrivateReduceWhenUnsorted) {
  CooTensor t({16, 16});
  t.push({15, 0}, 1.0f);
  for (index_t i = 0; i < 15; ++i) t.push({i, 1}, 1.0f);
  HostExecParams opt;
  opt.grain_nnz = 4;
  opt.threads = 4;
  EXPECT_FALSE(CooSpan(t).slices_contiguous(0));
  EXPECT_EQ(choose_host_strategy(t, 0, opt), HostStrategy::PrivateReduce);
}

TEST(MttkrpPar, AutoPicksPrivateReduceOnGiantSliceSkew) {
  // One slice holds ~all entries: slice-aligned chunks cannot balance.
  CooTensor t({8, 20000});
  for (index_t j = 0; j < 10000; ++j) t.push({3, j}, 1.0f);
  t.push({4, 0}, 1.0f);
  t.sort_by_mode(0);
  HostExecParams opt;
  opt.grain_nnz = 64;
  opt.threads = 4;
  EXPECT_EQ(choose_host_strategy(t, 0, opt), HostStrategy::PrivateReduce);

  // The features fast path must agree without probing the index array.
  const auto feat = TensorFeatures::extract(t, 0);
  HostExecParams with_feat = opt;
  with_feat.features = &feat;
  EXPECT_EQ(choose_host_strategy(t, 0, with_feat),
            HostStrategy::PrivateReduce);

  const auto f = random_factors(t, 8, 24);
  const auto expect = mttkrp_coo_ref(t, f, 0);
  const auto got = mttkrp_coo_par(t, f, 0, opt);
  // 10000 float terms accumulate into one row; reassociation across the
  // private parts shifts the sum by O(n·eps·sum) — loose tolerance.
  EXPECT_LT(DenseMatrix::max_abs_diff(expect, got), 0.1);
}

TEST(MttkrpPar, AutoPicksSliceOwnerOnBalancedSorted) {
  CooTensor t = skewed_tensor(3, 20000, 25);
  t.sort_by_mode(0);
  HostExecParams opt;
  opt.grain_nnz = 64;
  opt.threads = 2;
  // Balanced synthetic tensors have no dominating slice.
  EXPECT_EQ(choose_host_strategy(t, 0, opt), HostStrategy::SliceOwner);
}

TEST(MttkrpPar, SliceOwnerRejectsUnsortedInput) {
  CooTensor t({16, 4});
  t.push({15, 0}, 1.0f);
  for (index_t i = 0; i < 15; ++i) t.push({14 - i, 1}, 2.0f);
  const auto f = random_factors(t, 4, 26);
  DenseMatrix out(16, 4);
  HostExecParams opt;
  opt.strategy = HostStrategy::SliceOwner;
  opt.threads = 2;
  opt.grain_nnz = 1;
  EXPECT_THROW(mttkrp_coo_par(t, f, 0, out, false, opt), Error);
}

TEST(MttkrpPar, PrivateReduceHandlesArbitraryEntryOrder) {
  // Entries deliberately not grouped by the target mode.
  CooTensor t = skewed_tensor(3, 5000, 27);
  t.sort_by_mode(2);  // grouped by the wrong mode for a mode-0 MTTKRP
  const auto f = random_factors(t, 8, 28);
  const auto expect = mttkrp_coo_ref(t, f, 0);
  HostExecParams opt;
  opt.grain_nnz = 128;
  opt.threads = 4;
  const auto got = mttkrp_coo_par(t, f, 0, opt);
  EXPECT_LT(DenseMatrix::max_abs_diff(expect, got), 1e-3);
}

TEST(MttkrpPar, DuplicateCoordinatesAccumulate) {
  CooTensor t({4, 4});
  for (int rep = 0; rep < 100; ++rep) t.push({2, 3}, 0.5f);
  const auto f = random_factors(t, 8, 29);
  const auto expect = mttkrp_coo_ref(t, f, 0);
  for (HostStrategy s : {HostStrategy::SliceOwner,
                         HostStrategy::PrivateReduce}) {
    HostExecParams opt;
    opt.strategy = s;
    opt.threads = 4;
    opt.grain_nnz = 1;
    const auto got = mttkrp_coo_par(t, f, 0, opt);
    EXPECT_LT(DenseMatrix::max_abs_diff(expect, got), 1e-3)
        << host_strategy_name(s);
  }
}

TEST(MttkrpPar, EmptyAndSingletonTensors) {
  CooTensor empty({4, 4});
  const auto fe = random_factors(empty, 4, 30);
  const auto got_e = mttkrp_coo_par(empty, fe, 0);
  EXPECT_EQ(got_e.rows(), 4u);
  for (index_t i = 0; i < 4; ++i) {
    for (index_t j = 0; j < 4; ++j) EXPECT_EQ(got_e(i, j), 0.0f);
  }

  CooTensor one({4, 4});
  one.push({1, 2}, 3.0f);
  const auto fo = random_factors(one, 4, 31);
  const auto expect = mttkrp_coo_ref(one, fo, 0);
  const auto got_o = mttkrp_coo_par(one, fo, 0);
  EXPECT_EQ(DenseMatrix::max_abs_diff(expect, got_o), 0.0);

  CooTensor vec({8});  // order-1 degenerate case
  vec.push({5}, 2.0f);
  vec.push({5}, 1.0f);
  FactorList fv;
  fv.emplace_back(8, 3);
  const auto got_v = mttkrp_coo_par(vec, fv, 0);
  const auto exp_v = mttkrp_coo_ref(vec, fv, 0);
  EXPECT_EQ(DenseMatrix::max_abs_diff(exp_v, got_v), 0.0);
}

TEST(MttkrpPar, AccumulateAddsOntoExisting) {
  CooTensor t = skewed_tensor(3, 3000, 32);
  t.sort_by_mode(0);
  const auto f = random_factors(t, 8, 33);
  DenseMatrix expect(t.dim(0), 8, 1.0f);
  mttkrp_coo_ref(t, f, 0, expect, /*accumulate=*/true);
  HostExecParams opt;
  opt.grain_nnz = 64;
  opt.threads = 4;
  DenseMatrix got(t.dim(0), 8, 1.0f);
  mttkrp_coo_par(t, f, 0, got, /*accumulate=*/true, opt);
  EXPECT_LT(DenseMatrix::max_abs_diff(expect, got), 1e-3);
}

TEST(MttkrpPar, RejectsBadShapes) {
  CooTensor t({3, 4});
  t.push({0, 0}, 1.0f);
  FactorList f;
  f.emplace_back(3, 8);
  EXPECT_THROW(check_factors(CooSpan(t), f), Error);  // missing factor
  f.emplace_back(4, 4);                               // wrong rank
  EXPECT_THROW(check_factors(CooSpan(t), f), Error);
  f[1] = DenseMatrix(4, 8);
  EXPECT_EQ(check_factors(CooSpan(t), f), 8u);
  DenseMatrix bad(2, 8);  // wrong output shape
  EXPECT_THROW(mttkrp_coo_par(t, f, 0, bad, false, {}), Error);
}

// ---------------------------------------------------------------------
// CooSpan semantics: views alias the parent and match extract copies.

TEST(CooSpanTest, SpanResultsEqualExtractResults) {
  CooTensor t = skewed_tensor(3, 2000, 34);
  t.sort_by_mode(0);
  const auto f = random_factors(t, 8, 35);
  const nnz_t third = t.nnz() / 3;
  for (int s = 0; s < 3; ++s) {
    const nnz_t lo = s * third;
    const nnz_t hi = s == 2 ? t.nnz() : (s + 1) * third;
    const CooTensor copy = t.extract(lo, hi);
    const CooSpan view = t.span(lo, hi);
    // The view aliases the parent's arrays — no allocation happened.
    EXPECT_EQ(view.values(), t.values().data() + lo);
    EXPECT_EQ(view.mode_indices(0), t.mode_indices(0).data() + lo);
    EXPECT_EQ(view.nnz(), copy.nnz());
    EXPECT_EQ(view.offset(), lo);
    EXPECT_EQ(view.bytes(), copy.bytes());

    HostExecParams serial;
    serial.strategy = HostStrategy::Serial;
    DenseMatrix from_span(t.dim(0), 8);
    mttkrp_coo_par(view, f, 0, from_span, false, serial);
    // Same kernel on the aliasing view and on an owning copy of the same
    // range: identical inputs, identical instruction stream → exact.
    DenseMatrix from_copy(t.dim(0), 8);
    mttkrp_coo_par(copy, f, 0, from_copy, false, serial);
    EXPECT_EQ(DenseMatrix::max_abs_diff(from_copy, from_span), 0.0);

    const CooTensor rematerialized = view.materialize();
    EXPECT_EQ(rematerialized.nnz(), copy.nnz());
    for (nnz_t e = 0; e < copy.nnz(); ++e) {
      EXPECT_EQ(rematerialized.value(e), copy.value(e));
      for (order_t m = 0; m < t.order(); ++m) {
        EXPECT_EQ(rematerialized.index(m, e), copy.index(m, e));
      }
    }
  }
}

TEST(CooSpanTest, SubspanComposesAndChecksBounds) {
  CooTensor t = skewed_tensor(2, 100, 36);
  const CooSpan whole(t);
  const CooSpan mid = whole.subspan(10, 60);
  const CooSpan inner = mid.subspan(5, 20);
  EXPECT_EQ(inner.nnz(), 15u);
  EXPECT_EQ(inner.offset(), 15u);  // 10 (mid) + 5
  EXPECT_EQ(inner.value(0), t.value(15));
  EXPECT_EQ(inner.index(0, 0), t.index(0, 15));
  EXPECT_THROW(mid.subspan(0, 51), Error);
  EXPECT_THROW(whole.subspan(60, 59), Error);
}

// ---------------------------------------------------------------------
// Parallel CSF walk.

TEST(MttkrpCsfPar, MatchesSerialCsfAcrossThreads) {
  for (int order : {1, 2, 3, 4}) {
    CooTensor coo = skewed_tensor(order, 6000, 37 + order);
    const auto csf = CsfTensor::build(coo, 0);
    const auto f = random_factors(coo, 8, 38);
    DenseMatrix expect(coo.dim(0), 8);
    mttkrp_csf(csf, f, expect);
    for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                                std::size_t{0}}) {
      HostExecParams opt;
      opt.threads = threads;
      opt.grain_nnz = 64;
      DenseMatrix got(coo.dim(0), 8);
      mttkrp_csf_par(csf, f, got, false, opt);
      EXPECT_LT(DenseMatrix::max_abs_diff(expect, got), 1e-3)
          << "order=" << order << " threads=" << threads;
    }
  }
}

TEST(MttkrpCsfPar, AccumulateAndEmpty) {
  CooTensor coo = skewed_tensor(3, 3000, 39);
  const auto csf = CsfTensor::build(coo, 0);
  const auto f = random_factors(coo, 4, 40);
  DenseMatrix expect(coo.dim(0), 4, 2.0f);
  mttkrp_csf(csf, f, expect, /*accumulate=*/true);
  DenseMatrix got(coo.dim(0), 4, 2.0f);
  HostExecParams opt;
  opt.grain_nnz = 64;
  mttkrp_csf_par(csf, f, got, /*accumulate=*/true, opt);
  EXPECT_LT(DenseMatrix::max_abs_diff(expect, got), 1e-3);
}

// ---------------------------------------------------------------------
// ThreadPool satellites: grain sizing and nested-call safety.

TEST(ThreadPoolPar, GrainLimitsChunkCount) {
  std::atomic<int> calls{0};
  ThreadPool::global().parallel_for(
      0, 100, [&](std::size_t, std::size_t) { ++calls; }, /*grain=*/100);
  EXPECT_EQ(calls.load(), 1);  // whole range fits one grain → inline
}

TEST(ThreadPoolPar, NestedParallelForRunsInlineWithoutDeadlock) {
  EXPECT_FALSE(ThreadPool::on_worker_thread());
  std::atomic<std::size_t> total{0};
  ThreadPool::global().parallel_for(0, 8, [&](std::size_t lo,
                                              std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      // A nested parallel_for from a worker must run inline rather than
      // enqueue-and-wait (which can deadlock a single-queue pool).
      ThreadPool::global().parallel_for(0, 4, [&](std::size_t l,
                                                  std::size_t h) {
        if (ThreadPool::global().size() > 1) {
          EXPECT_TRUE(ThreadPool::on_worker_thread());
        }
        total += h - l;
      });
    }
  });
  EXPECT_EQ(total.load(), 8u * 4u);
}

}  // namespace
}  // namespace scalfrag
