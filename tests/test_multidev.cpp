// Multi-device sharded pipeline tests: the DeviceGroup link cost model,
// the contiguous nnz-balanced shard planner, and the sharded executor's
// functional + simulated semantics (deterministic reduction, makespan
// accounting, boundary-overlap reduce payload, metrics report).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "gpusim/device_group.hpp"
#include "scalfrag/multi_pipeline.hpp"
#include "scalfrag/pipeline.hpp"
#include "scalfrag/shard.hpp"
#include "tensor/generator.hpp"
#include "tensor/mttkrp_ref.hpp"

namespace scalfrag {
namespace {

const gpusim::DeviceSpec kSpec = gpusim::DeviceSpec::rtx3090();

FactorList random_factors(const CooTensor& t, index_t rank,
                          std::uint64_t seed) {
  Rng rng(seed);
  FactorList f;
  for (order_t m = 0; m < t.order(); ++m) {
    DenseMatrix a(t.dim(m), rank);
    a.randomize(rng);
    f.push_back(std::move(a));
  }
  return f;
}

CooTensor sorted_frostt(const char* name, double scale, std::uint64_t seed,
                        order_t mode = 0) {
  CooTensor t = make_frostt_tensor(name, scale, seed);
  t.sort_by_mode(mode);
  return t;
}

/// One slice holding every non-zero: any multi-segment cut must land
/// mid-slice, so sharding it across devices forces a boundary overlap.
CooTensor mega_slice_tensor(nnz_t nnz) {
  CooTensor t({2, 64, 64});
  Rng rng(77);
  for (nnz_t e = 0; e < nnz; ++e) {
    t.push({0, static_cast<index_t>(rng.next_u64() % 64),
            static_cast<index_t>(rng.next_u64() % 64)},
           rng.next_float());
  }
  t.sort_by_mode(0);
  return t;
}

// ---------------------------------------------------------------------
// DeviceGroup link cost model
// ---------------------------------------------------------------------

TEST(DeviceGroup, HopCostIsLatencyPlusWire) {
  const gpusim::LinkSpec link = gpusim::LinkSpec::pcie4_p2p();
  gpusim::DeviceGroup g(kSpec, 2, link);
  // latency_us * 1e3 + bytes / bandwidth_gbps (GB/s == bytes/ns).
  EXPECT_EQ(g.hop_ns(0), static_cast<sim_ns>(link.latency_us * 1e3));
  EXPECT_EQ(g.hop_ns(22000),
            static_cast<sim_ns>(link.latency_us * 1e3 +
                                22000.0 / link.bandwidth_gbps));
}

TEST(DeviceGroup, TreeReduceChargesLog2Rounds) {
  const std::size_t bytes = 1 << 20;
  for (const auto& [n, rounds] :
       {std::pair{2, 1}, std::pair{3, 2}, std::pair{4, 2}, std::pair{8, 3}}) {
    gpusim::DeviceGroup g(kSpec, n);
    EXPECT_EQ(g.reduce_ns(bytes, gpusim::ReduceSchedule::Tree),
              static_cast<sim_ns>(rounds) * g.hop_ns(bytes))
        << n << " devices";
  }
}

TEST(DeviceGroup, RingReduceCharges2NMinus1ChunkHops) {
  const std::size_t bytes = 1 << 20;
  for (const int n : {2, 4, 8}) {
    gpusim::DeviceGroup g(kSpec, n);
    const std::size_t chunk =
        (bytes + static_cast<std::size_t>(n) - 1) / static_cast<std::size_t>(n);
    EXPECT_EQ(g.reduce_ns(bytes, gpusim::ReduceSchedule::Ring),
              static_cast<sim_ns>(2 * (n - 1)) * g.hop_ns(chunk))
        << n << " devices";
  }
}

TEST(DeviceGroup, ReduceIsFreeForOneDeviceOrZeroBytes) {
  gpusim::DeviceGroup solo(kSpec, 1);
  EXPECT_EQ(solo.reduce_ns(1 << 20, gpusim::ReduceSchedule::Tree), 0u);
  gpusim::DeviceGroup pair(kSpec, 2);
  EXPECT_EQ(pair.reduce_ns(0, gpusim::ReduceSchedule::Ring), 0u);
}

TEST(DeviceGroup, PicksTreeForSmallRingForLarge) {
  // Tree moves the full buffer log2(n) times; ring moves ~2 buffers
  // total but pays 2(n-1) latencies. Small payloads are latency-bound
  // (tree wins), large ones bandwidth-bound (ring wins).
  gpusim::DeviceGroup g(kSpec, 8);
  EXPECT_EQ(g.pick_schedule(256), gpusim::ReduceSchedule::Tree);
  EXPECT_EQ(g.pick_schedule(64 << 20), gpusim::ReduceSchedule::Ring);
}

TEST(DeviceGroup, ValidatesConstruction) {
  EXPECT_THROW(gpusim::DeviceGroup(kSpec, 0), Error);
  gpusim::LinkSpec bad;
  bad.bandwidth_gbps = 0.0;
  EXPECT_THROW(gpusim::DeviceGroup(kSpec, 2, bad), Error);
  EXPECT_THROW(gpusim::DeviceGroup(std::vector<gpusim::DeviceSpec>{}), Error);
  gpusim::DeviceGroup g(kSpec, 3);
  EXPECT_EQ(g.size(), 3);
  EXPECT_EQ(g.spec().name, kSpec.name);
  EXPECT_TRUE(g.uniform());
}

TEST(DeviceGroup, HeterogeneousSpecsAndPresets) {
  gpusim::DeviceGroup pair(
      {gpusim::DeviceSpec::rtx3090(), gpusim::DeviceSpec::rtx3060()});
  EXPECT_EQ(pair.size(), 2);
  EXPECT_FALSE(pair.uniform());
  EXPECT_EQ(pair.spec(0).name, gpusim::DeviceSpec::rtx3090().name);
  EXPECT_EQ(pair.spec(1).name, gpusim::DeviceSpec::rtx3060().name);
  // The 3060 is the slower part on both axes the planner weighs.
  EXPECT_LT(pair.spec(1).peak_gflops(), pair.spec(0).peak_gflops());
  EXPECT_LT(pair.spec(1).hbm_bandwidth_gbps, pair.spec(0).hbm_bandwidth_gbps);

  gpusim::DeviceGroup mixed = gpusim::DeviceGroup::mixed_3090_3060();
  EXPECT_EQ(mixed.size(), 4);
  EXPECT_FALSE(mixed.uniform());
  EXPECT_EQ(mixed.spec(0).name, gpusim::DeviceSpec::rtx3090().name);
  EXPECT_EQ(mixed.spec(3).name, gpusim::DeviceSpec::rtx3060().name);
}

// ---------------------------------------------------------------------
// Shard planner
// ---------------------------------------------------------------------

TEST(ShardPlan, EverySegmentOwnedExactlyOnceAndContiguously) {
  const CooTensor t = sorted_frostt("nell-2", 1.0 / 1024, 601);
  for (const int n : {1, 2, 3, 4, 8}) {
    gpusim::DeviceGroup g(kSpec, n);
    const ShardPlan sp =
        make_shard_plan(g, t, 0, 16, ExecConfig{}.devices(n));
    ASSERT_EQ(static_cast<int>(sp.shards.size()), n);
    int seg = 0;
    nnz_t nnz = 0;
    for (const auto& sh : sp.shards) {
      EXPECT_EQ(sh.seg_begin, seg);
      EXPECT_LE(sh.seg_begin, sh.seg_end);
      seg = sh.seg_end;
      nnz += sh.nnz;
      EXPECT_EQ(static_cast<int>(sh.launches.size()), sh.num_segments());
      if (!sh.empty()) {
        EXPECT_EQ(sh.nnz, sh.end - sh.begin);
      }
    }
    EXPECT_EQ(seg, static_cast<int>(sp.plan.size()));
    EXPECT_EQ(nnz, t.nnz());
  }
}

TEST(ShardPlan, BalancesNnzAcrossDevices) {
  const CooTensor t = sorted_frostt("nell-2", 1.0 / 1024, 602);
  gpusim::DeviceGroup g(kSpec, 4);
  const ShardPlan sp = make_shard_plan(g, t, 0, 16, ExecConfig{}.devices(4));
  const nnz_t ideal = t.nnz() / 4;
  // Greedy nearest-cut against slice-snapped segments: each shard stays
  // within one realized segment of the ideal share.
  nnz_t max_seg = 0;
  for (const auto& s : sp.plan.segments) max_seg = std::max(max_seg, s.nnz());
  EXPECT_LE(sp.max_shard_nnz(), ideal + max_seg);
  for (const auto& sh : sp.shards) EXPECT_FALSE(sh.empty());
}

TEST(ShardPlan, MoreDevicesThanSegmentsLeavesTrailingShardsEmpty) {
  // A 3-entry tensor realizes at most 3 segments; the rest of an
  // 8-device group must idle (empty shards, zero launches).
  CooTensor t({8, 4});
  t.push({0, 0}, 1.0f);
  t.push({3, 1}, 2.0f);
  t.push({6, 2}, 3.0f);
  t.sort_by_mode(0);
  gpusim::DeviceGroup g(kSpec, 8);
  const ShardPlan sp = make_shard_plan(g, t, 0, 4, ExecConfig{}.devices(8));
  nnz_t covered = 0;
  int non_empty = 0;
  for (const auto& sh : sp.shards) {
    covered += sh.nnz;
    non_empty += sh.empty() ? 0 : 1;
  }
  EXPECT_EQ(covered, t.nnz());
  EXPECT_LE(non_empty, 3);
  EXPECT_GE(non_empty, 1);
}

TEST(ShardPlan, Validation) {
  CooTensor t = make_frostt_tensor("uber", 1.0 / 2048, 603);
  gpusim::DeviceGroup g(kSpec, 2);
  EXPECT_THROW(make_shard_plan(g, t, 1, 8, ExecConfig{}.devices(2)), Error);
  t.sort_by_mode(1);
  ExecConfig with_schedule = ExecConfig{}.devices(2);
  with_schedule.launch_schedule.push_back({});
  EXPECT_THROW(make_shard_plan(g, t, 1, 8, with_schedule), Error);
}

TEST(ShardPlan, SelectorPickIsSanityCheckedByCostModel) {
  // With a selector, every predicted launch must cost no more than the
  // static heuristic under the device cost model — the planner drops
  // selector extrapolations that the model says are slower.
  const CooTensor t = sorted_frostt("uber", 1.0 / 512, 604);
  AutoTunerConfig tcfg;
  tcfg.corpus_size = 16;
  tcfg.seed = 605;
  AutoTuner tuner(kSpec, tcfg);
  tuner.train();
  const LaunchSelector sel = tuner.selector();

  gpusim::DeviceGroup g(kSpec, 4);
  const ExecConfig cfg = ExecConfig{}.devices(4);
  const ShardPlan adaptive = make_shard_plan(g, t, 0, 16, cfg, &sel);
  ExecConfig static_cfg = cfg;
  static_cfg.adaptive_launch = false;
  const ShardPlan fixed = make_shard_plan(g, t, 0, 16, static_cfg, nullptr);

  for (std::size_t d = 0; d < adaptive.shards.size(); ++d) {
    const auto& dev = g.device(static_cast<int>(d));
    const auto& a = adaptive.shards[d];
    const auto& s = fixed.shards[d];
    ASSERT_EQ(a.launches.size(), s.launches.size());
    for (std::size_t i = 0; i < a.launches.size(); ++i) {
      const auto gi = static_cast<std::size_t>(a.seg_begin) + i;
      if (adaptive.plan.segments[gi].nnz() == 0) continue;
      const auto prof =
          mttkrp_profile(adaptive.plan.features[gi], 16, cfg.use_shared_mem);
      EXPECT_LE(dev.cost_model().kernel_ns(a.launches[i], prof),
                dev.cost_model().kernel_ns(s.launches[i], prof));
    }
  }
}

TEST(ShardPlan, UniformGroupReproducesNnzBalancedCuts) {
  // Weighted sharding on a uniform group must detect equal unit costs
  // and take the exact nnz-balanced integer path — identical cuts to
  // weighted_shards(false).
  const CooTensor t = sorted_frostt("nell-2", 1.0 / 1024, 630);
  gpusim::DeviceGroup g(kSpec, 4);
  const ShardPlan w = make_shard_plan(g, t, 0, 16, ExecConfig{}.devices(4));
  const ShardPlan u = make_shard_plan(
      g, t, 0, 16, ExecConfig{}.devices(4).weighted_shards(false));
  EXPECT_FALSE(w.weighted);
  EXPECT_FALSE(u.weighted);
  ASSERT_EQ(w.shards.size(), u.shards.size());
  for (std::size_t d = 0; d < w.shards.size(); ++d) {
    EXPECT_EQ(w.shards[d].seg_begin, u.shards[d].seg_begin);
    EXPECT_EQ(w.shards[d].seg_end, u.shards[d].seg_end);
    EXPECT_EQ(w.shards[d].nnz, u.shards[d].nnz);
    EXPECT_EQ(w.shards[d].weight, 1.0);
  }
}

TEST(ShardPlan, WeightedCutsSkewTowardFasterDevices) {
  // Rank 64 keeps the kernels HBM-bound — the axis where the 3060 is
  // ~2.6x slower. (At tiny ranks the pipeline is PCIe-bound and the
  // mixed pair rightly degenerates to uniform cuts.)
  const CooTensor t = sorted_frostt("nell-2", 1.0 / 1024, 631);
  gpusim::DeviceGroup g(
      {gpusim::DeviceSpec::rtx3090(), gpusim::DeviceSpec::rtx3060()});
  const ShardPlan w = make_shard_plan(g, t, 0, 64, ExecConfig{}.devices(2));
  const ShardPlan u = make_shard_plan(
      g, t, 0, 64, ExecConfig{}.devices(2).weighted_shards(false));
  EXPECT_TRUE(w.weighted);
  EXPECT_FALSE(u.weighted);
  // The nnz-balanced cut halves the tensor; the weighted cut gives the
  // ~3x-faster 3090 the larger share and evens out predicted time.
  EXPECT_GT(w.shards[0].nnz, u.shards[0].nnz);
  EXPECT_GT(w.shards[0].nnz, w.shards[1].nnz);
  EXPECT_EQ(w.shards[0].weight, 1.0);
  EXPECT_LT(w.shards[1].weight, 1.0);
  EXPECT_LT(w.pred_time_imbalance(), u.pred_time_imbalance());
  // The per-segment predictions the stealing rule reads tally up.
  for (const ShardPlan* sp : {&w, &u}) {
    for (const auto& sh : sp->shards) {
      sim_ns sum = 0;
      for (const sim_ns p : sh.seg_pred_ns) sum += p;
      EXPECT_EQ(sum, sh.predicted_ns);
    }
    EXPECT_GT(sp->max_shard_pred_ns(), 0u);
  }
}

// ---------------------------------------------------------------------
// MultiPipelineExecutor
// ---------------------------------------------------------------------

TEST(MultiPipeline, MatchesReferenceOnEveryDeviceCount) {
  const CooTensor t = sorted_frostt("nips", 1.0 / 1024, 610);
  const auto f = random_factors(t, 16, 611);
  const DenseMatrix expect = mttkrp_coo_ref(t, f, 0);
  for (const int n : {1, 2, 3, 4, 8}) {
    gpusim::DeviceGroup g(kSpec, n);
    const auto res = run_multi_pipeline(g, t, f, 0, ExecConfig{}.devices(n));
    EXPECT_LT(DenseMatrix::max_abs_diff(res.output, expect), 2e-3)
        << n << " devices";
    // Overlapped reduction contract: never worse than the barrier, never
    // faster than the slowest device's compute.
    EXPECT_GE(res.total_ns, res.compute_ns);
    EXPECT_LE(res.total_ns, res.compute_ns + res.reduce_ns);
    EXPECT_EQ(res.overlap_saved_ns,
              res.compute_ns + res.reduce_ns - res.total_ns);
    sim_ns max_dev = 0;
    ASSERT_EQ(static_cast<int>(res.devices.size()), n);
    for (const auto& st : res.devices) max_dev = std::max(max_dev, st.total_ns);
    EXPECT_EQ(res.compute_ns, max_dev);
  }
}

TEST(MultiPipeline, ReductionIsDeterministic) {
  // Partials are summed in device order, so two runs are bit-identical
  // regardless of thread scheduling.
  const CooTensor t = sorted_frostt("vast", 1.0 / 1024, 612);
  const auto f = random_factors(t, 8, 613);
  gpusim::DeviceGroup g(kSpec, 4);
  const ExecConfig cfg = ExecConfig{}.devices(4);
  const auto a = run_multi_pipeline(g, t, f, 0, cfg);
  const auto b = run_multi_pipeline(g, t, f, 0, cfg);
  ASSERT_EQ(a.output.size(), b.output.size());
  EXPECT_EQ(std::memcmp(a.output.data(), b.output.data(),
                        a.output.size() * sizeof(value_t)),
            0);
  EXPECT_EQ(a.total_ns, b.total_ns);
}

TEST(MultiPipeline, SliceAlignedCutsNeedNoCollective) {
  // One nnz per mode-0 slice: every segment cut lands on a slice
  // boundary, shards own disjoint output rows, and the reduction
  // payload is empty.
  CooTensor t({64, 16});
  Rng rng(614);
  for (index_t i = 0; i < 64; ++i) {
    t.push({i, static_cast<index_t>(rng.next_u64() % 16)}, rng.next_float());
  }
  t.sort_by_mode(0);
  const auto f = random_factors(t, 8, 615);
  gpusim::DeviceGroup g(kSpec, 4);
  const auto res =
      run_multi_pipeline(g, t, f, 0, ExecConfig{}.devices(4).segments(8));
  EXPECT_EQ(res.reduce_ns, 0u);
  EXPECT_EQ(res.total_ns, res.compute_ns);
  EXPECT_LT(DenseMatrix::max_abs_diff(res.output, mttkrp_coo_ref(t, f, 0)),
            2e-3);
}

TEST(MultiPipeline, SplitSliceChargesTheLinkModel) {
  // A single mega slice must be split mid-slice to shard at all; both
  // neighbours then write the same output row and the link model
  // charges the chosen schedule over that boundary payload.
  const CooTensor t = mega_slice_tensor(4096);
  const auto f = random_factors(t, 8, 616);
  gpusim::DeviceGroup g(kSpec, 2);
  const ExecConfig cfg = ExecConfig{}.devices(2).segments(4).reduction(
      gpusim::ReduceSchedule::Ring);
  const auto res = run_multi_pipeline(g, t, f, 0, cfg);
  EXPECT_EQ(res.reduce_schedule, gpusim::ReduceSchedule::Ring);
  EXPECT_GT(res.reduce_ns, 0u);
  EXPECT_GE(res.total_ns, res.compute_ns);
  EXPECT_LE(res.total_ns, res.compute_ns + res.reduce_ns);
  EXPECT_LT(DenseMatrix::max_abs_diff(res.output, mttkrp_coo_ref(t, f, 0)),
            2e-3);
  // overlap off pins the PR 4 barrier accounting exactly.
  const auto barrier =
      run_multi_pipeline(g, t, f, 0, ExecConfig(cfg).overlap_reduce(false));
  EXPECT_GT(barrier.reduce_ns, 0u);
  EXPECT_EQ(barrier.total_ns, barrier.compute_ns + barrier.reduce_ns);
  EXPECT_EQ(barrier.overlap_saved_ns, 0u);
}

TEST(MultiPipeline, StrongScalingOnComputeBoundTensor) {
  const CooTensor t = sorted_frostt("nell-2", 1.0 / 512, 617);
  const auto f = random_factors(t, 16, 618);
  sim_ns prev = 0;
  for (const int n : {1, 2, 4}) {
    gpusim::DeviceGroup g(kSpec, n);
    const auto res = run_multi_pipeline(g, t, f, 0, ExecConfig{}.devices(n));
    if (n > 1) {
      EXPECT_LT(res.total_ns, prev) << n << " devices";
    }
    prev = res.total_ns;
  }
}

TEST(MultiPipeline, HeterogeneousGroupMatchesReference) {
  const CooTensor t = sorted_frostt("nips", 1.0 / 1024, 640);
  const auto f = random_factors(t, 16, 641);
  const DenseMatrix expect = mttkrp_coo_ref(t, f, 0);
  {
    gpusim::DeviceGroup g(
        {gpusim::DeviceSpec::rtx3090(), gpusim::DeviceSpec::rtx3060()});
    const auto res = run_multi_pipeline(g, t, f, 0, ExecConfig{}.devices(2));
    EXPECT_LT(DenseMatrix::max_abs_diff(res.output, expect), 2e-3);
    EXPECT_TRUE(res.plan.weighted);
  }
  {
    gpusim::DeviceGroup g = gpusim::DeviceGroup::mixed_3090_3060();
    const auto full = run_multi_pipeline(g, t, f, 0, ExecConfig{}.devices(4));
    EXPECT_LT(DenseMatrix::max_abs_diff(full.output, expect), 2e-3);
    // Stealing + overlap never change the bits: same weighted plan, so
    // the barrier/no-steal run must match byte for byte.
    const auto barrier = run_multi_pipeline(
        g, t, f, 0,
        ExecConfig{}.devices(4).overlap_reduce(false).steal(false));
    ASSERT_EQ(full.output.size(), barrier.output.size());
    EXPECT_EQ(std::memcmp(full.output.data(), barrier.output.data(),
                          full.output.size() * sizeof(value_t)),
              0);
  }
}

TEST(MultiPipeline, StealingIsDeterministicAndBitIdentical) {
  // nnz-uniform cuts on a mixed pair at a rank that keeps the kernels
  // HBM-bound leave the 3060 with ~2.6x the predicted time, so the
  // drained 3090 steals from its tail.
  const CooTensor t = sorted_frostt("nell-2", 1.0 / 1024, 642);
  const auto f = random_factors(t, 64, 643);
  gpusim::DeviceGroup g(
      {gpusim::DeviceSpec::rtx3090(), gpusim::DeviceSpec::rtx3060()});
  // Enough segments that the straggler still has an unissued tail once
  // the fast device drains (issue runs num_streams segments ahead).
  const ExecConfig cfg =
      ExecConfig{}.devices(2).segments(16).weighted_shards(false);
  const auto a = run_multi_pipeline(g, t, f, 0, cfg);
  ASSERT_FALSE(a.steals.empty());
  for (const auto& s : a.steals) {
    EXPECT_EQ(s.victim, 1);
    EXPECT_EQ(s.thief, 0);
  }
  int stolen = 0;
  for (const auto& st : a.devices) stolen += st.stolen_segments;
  EXPECT_EQ(stolen, static_cast<int>(a.steals.size()));
  EXPECT_GT(a.devices[0].stolen_nnz, 0u);

  // Deterministic: the full decision sequence replays exactly.
  const auto b = run_multi_pipeline(g, t, f, 0, cfg);
  ASSERT_EQ(a.steals.size(), b.steals.size());
  for (std::size_t i = 0; i < a.steals.size(); ++i) {
    EXPECT_EQ(a.steals[i].segment, b.steals[i].segment);
    EXPECT_EQ(a.steals[i].victim, b.steals[i].victim);
    EXPECT_EQ(a.steals[i].thief, b.steals[i].thief);
    EXPECT_EQ(a.steals[i].decision_ns, b.steals[i].decision_ns);
  }
  EXPECT_EQ(a.total_ns, b.total_ns);
  ASSERT_EQ(a.output.size(), b.output.size());
  EXPECT_EQ(std::memcmp(a.output.data(), b.output.data(),
                        a.output.size() * sizeof(value_t)),
            0);

  // Bit-identical to the no-stealing run, and faster: the stolen tail
  // comes off the straggler's critical path.
  const auto off = run_multi_pipeline(g, t, f, 0, ExecConfig(cfg).steal(false));
  EXPECT_TRUE(off.steals.empty());
  ASSERT_EQ(a.output.size(), off.output.size());
  EXPECT_EQ(std::memcmp(a.output.data(), off.output.data(),
                        a.output.size() * sizeof(value_t)),
            0);
  EXPECT_LT(a.compute_ns, off.compute_ns);
  EXPECT_LT(a.total_ns, off.total_ns);
}

TEST(MultiPipeline, OverlappedReductionHidesUnderComputeTail) {
  // One mega slice split eight ways across a 3+1 mixed group with
  // nnz-uniform shards: at an HBM-bound rank the three 3090s drain
  // early, so the boundary chunks between them ride the 3060
  // straggler's compute tail and only the last chunk extends the
  // makespan.
  const CooTensor t = mega_slice_tensor(65536);
  const auto f = random_factors(t, 64, 644);
  gpusim::DeviceGroup g = gpusim::DeviceGroup::mixed_3090_3060();
  const ExecConfig cfg =
      ExecConfig{}.devices(4).segments(8).weighted_shards(false).steal(false);
  const auto on = run_multi_pipeline(g, t, f, 0, cfg);
  EXPECT_GT(on.reduce_ns, 0u);
  EXPECT_GT(on.overlap_saved_ns, 0u);
  EXPECT_GE(on.total_ns, on.compute_ns);
  EXPECT_LT(on.total_ns, on.compute_ns + on.reduce_ns);

  const auto off =
      run_multi_pipeline(g, t, f, 0, ExecConfig(cfg).overlap_reduce(false));
  EXPECT_EQ(off.total_ns, off.compute_ns + off.reduce_ns);
  EXPECT_EQ(off.overlap_saved_ns, 0u);
  EXPECT_EQ(on.compute_ns, off.compute_ns);
  // Overlap is pure scheduling — the bits never move.
  ASSERT_EQ(on.output.size(), off.output.size());
  EXPECT_EQ(std::memcmp(on.output.data(), off.output.data(),
                        on.output.size() * sizeof(value_t)),
            0);
  // 64k products fold into one output row, so compare against the
  // reference relatively: the entries are O(thousands) and only summed
  // in a different order.
  const DenseMatrix expect = mttkrp_coo_ref(t, f, 0);
  value_t max_mag = 0.0f;
  for (std::size_t i = 0; i < expect.size(); ++i) {
    max_mag = std::max(max_mag, std::abs(expect.data()[i]));
  }
  ASSERT_GT(max_mag, 0.0f);
  EXPECT_LT(DenseMatrix::max_abs_diff(on.output, expect) / max_mag, 1e-4);
}

TEST(MultiPipeline, ReportsMergedMetrics) {
  const CooTensor t = sorted_frostt("uber", 1.0 / 1024, 619);
  const auto f = random_factors(t, 8, 620);
  obs::MetricsRegistry met;
  gpusim::DeviceGroup g(kSpec, 2);
  const auto res =
      run_multi_pipeline(g, t, f, 0, ExecConfig{}.devices(2).metrics(&met));
  EXPECT_EQ(met.counter("multidev/runs"), 1u);
  EXPECT_EQ(met.gauge("multidev/devices"), 2.0);
  EXPECT_EQ(met.gauge("multidev/total_ns"),
            static_cast<double>(res.total_ns));
  EXPECT_EQ(met.gauge("multidev/gpu0/nnz"),
            static_cast<double>(res.devices[0].nnz));
  EXPECT_EQ(met.gauge("multidev/imbalance"), res.pred_imbalance);
  EXPECT_EQ(met.gauge("multidev/overlap_ns"),
            static_cast<double>(res.overlap_saved_ns));
  EXPECT_EQ(met.counter("multidev/steals"), res.steals.size());
  EXPECT_EQ(met.gauge("multidev/gpu0/stolen_segments"),
            static_cast<double>(res.devices[0].stolen_segments));
  EXPECT_GT(met.gauge("multidev/max_shard_pred_ns"), 0.0);
  EXPECT_GT(met.stage("host/shard_planning").count, 0u);
  // Per-device timelines land under the gpuN prefix.
  EXPECT_GT(met.counter("gpu0/kernel_launches"), 0u);
  EXPECT_GT(met.stage("gpu0/Kernel").count, 0u);
}

TEST(MultiPipeline, ValidatesConfigAgainstGroup) {
  const CooTensor t = sorted_frostt("uber", 1.0 / 2048, 621);
  const auto f = random_factors(t, 8, 622);
  gpusim::DeviceGroup g(kSpec, 2);
  // devices must match the group size.
  EXPECT_THROW(run_multi_pipeline(g, t, f, 0, ExecConfig{}.devices(4)),
               Error);
  // The CPU hybrid split is single-device only.
  EXPECT_THROW(run_multi_pipeline(g, t, f, 0,
                                  ExecConfig{}.devices(2).hybrid_threshold(8)),
               Error);
  // Mode-sorted input is required.
  CooTensor unsorted = t;
  unsorted.sort_by_mode(1);
  if (!unsorted.is_sorted_by_mode(0)) {
    EXPECT_THROW(
        run_multi_pipeline(g, unsorted, f, 0, ExecConfig{}.devices(2)),
        Error);
  }
}

}  // namespace
}  // namespace scalfrag
