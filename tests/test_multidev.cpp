// Multi-device sharded pipeline tests: the DeviceGroup link cost model,
// the contiguous nnz-balanced shard planner, and the sharded executor's
// functional + simulated semantics (deterministic reduction, makespan
// accounting, boundary-overlap reduce payload, metrics report).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "gpusim/device_group.hpp"
#include "scalfrag/multi_pipeline.hpp"
#include "scalfrag/pipeline.hpp"
#include "scalfrag/shard.hpp"
#include "tensor/generator.hpp"
#include "tensor/mttkrp_ref.hpp"

namespace scalfrag {
namespace {

const gpusim::DeviceSpec kSpec = gpusim::DeviceSpec::rtx3090();

FactorList random_factors(const CooTensor& t, index_t rank,
                          std::uint64_t seed) {
  Rng rng(seed);
  FactorList f;
  for (order_t m = 0; m < t.order(); ++m) {
    DenseMatrix a(t.dim(m), rank);
    a.randomize(rng);
    f.push_back(std::move(a));
  }
  return f;
}

CooTensor sorted_frostt(const char* name, double scale, std::uint64_t seed,
                        order_t mode = 0) {
  CooTensor t = make_frostt_tensor(name, scale, seed);
  t.sort_by_mode(mode);
  return t;
}

/// One slice holding every non-zero: any multi-segment cut must land
/// mid-slice, so sharding it across devices forces a boundary overlap.
CooTensor mega_slice_tensor(nnz_t nnz) {
  CooTensor t({2, 64, 64});
  Rng rng(77);
  for (nnz_t e = 0; e < nnz; ++e) {
    t.push({0, static_cast<index_t>(rng.next_u64() % 64),
            static_cast<index_t>(rng.next_u64() % 64)},
           rng.next_float());
  }
  t.sort_by_mode(0);
  return t;
}

// ---------------------------------------------------------------------
// DeviceGroup link cost model
// ---------------------------------------------------------------------

TEST(DeviceGroup, HopCostIsLatencyPlusWire) {
  const gpusim::LinkSpec link = gpusim::LinkSpec::pcie4_p2p();
  gpusim::DeviceGroup g(kSpec, 2, link);
  // latency_us * 1e3 + bytes / bandwidth_gbps (GB/s == bytes/ns).
  EXPECT_EQ(g.hop_ns(0), static_cast<sim_ns>(link.latency_us * 1e3));
  EXPECT_EQ(g.hop_ns(22000),
            static_cast<sim_ns>(link.latency_us * 1e3 +
                                22000.0 / link.bandwidth_gbps));
}

TEST(DeviceGroup, TreeReduceChargesLog2Rounds) {
  const std::size_t bytes = 1 << 20;
  for (const auto& [n, rounds] :
       {std::pair{2, 1}, std::pair{3, 2}, std::pair{4, 2}, std::pair{8, 3}}) {
    gpusim::DeviceGroup g(kSpec, n);
    EXPECT_EQ(g.reduce_ns(bytes, gpusim::ReduceSchedule::Tree),
              static_cast<sim_ns>(rounds) * g.hop_ns(bytes))
        << n << " devices";
  }
}

TEST(DeviceGroup, RingReduceCharges2NMinus1ChunkHops) {
  const std::size_t bytes = 1 << 20;
  for (const int n : {2, 4, 8}) {
    gpusim::DeviceGroup g(kSpec, n);
    const std::size_t chunk =
        (bytes + static_cast<std::size_t>(n) - 1) / static_cast<std::size_t>(n);
    EXPECT_EQ(g.reduce_ns(bytes, gpusim::ReduceSchedule::Ring),
              static_cast<sim_ns>(2 * (n - 1)) * g.hop_ns(chunk))
        << n << " devices";
  }
}

TEST(DeviceGroup, ReduceIsFreeForOneDeviceOrZeroBytes) {
  gpusim::DeviceGroup solo(kSpec, 1);
  EXPECT_EQ(solo.reduce_ns(1 << 20, gpusim::ReduceSchedule::Tree), 0u);
  gpusim::DeviceGroup pair(kSpec, 2);
  EXPECT_EQ(pair.reduce_ns(0, gpusim::ReduceSchedule::Ring), 0u);
}

TEST(DeviceGroup, PicksTreeForSmallRingForLarge) {
  // Tree moves the full buffer log2(n) times; ring moves ~2 buffers
  // total but pays 2(n-1) latencies. Small payloads are latency-bound
  // (tree wins), large ones bandwidth-bound (ring wins).
  gpusim::DeviceGroup g(kSpec, 8);
  EXPECT_EQ(g.pick_schedule(256), gpusim::ReduceSchedule::Tree);
  EXPECT_EQ(g.pick_schedule(64 << 20), gpusim::ReduceSchedule::Ring);
}

TEST(DeviceGroup, ValidatesConstruction) {
  EXPECT_THROW(gpusim::DeviceGroup(kSpec, 0), Error);
  gpusim::LinkSpec bad;
  bad.bandwidth_gbps = 0.0;
  EXPECT_THROW(gpusim::DeviceGroup(kSpec, 2, bad), Error);
  gpusim::DeviceGroup g(kSpec, 3);
  EXPECT_EQ(g.size(), 3);
  EXPECT_EQ(g.spec().name, kSpec.name);
}

// ---------------------------------------------------------------------
// Shard planner
// ---------------------------------------------------------------------

TEST(ShardPlan, EverySegmentOwnedExactlyOnceAndContiguously) {
  const CooTensor t = sorted_frostt("nell-2", 1.0 / 1024, 601);
  for (const int n : {1, 2, 3, 4, 8}) {
    gpusim::DeviceGroup g(kSpec, n);
    const ShardPlan sp =
        make_shard_plan(g, t, 0, 16, ExecConfig{}.devices(n));
    ASSERT_EQ(static_cast<int>(sp.shards.size()), n);
    int seg = 0;
    nnz_t nnz = 0;
    for (const auto& sh : sp.shards) {
      EXPECT_EQ(sh.seg_begin, seg);
      EXPECT_LE(sh.seg_begin, sh.seg_end);
      seg = sh.seg_end;
      nnz += sh.nnz;
      EXPECT_EQ(static_cast<int>(sh.launches.size()), sh.num_segments());
      if (!sh.empty()) {
        EXPECT_EQ(sh.nnz, sh.end - sh.begin);
      }
    }
    EXPECT_EQ(seg, static_cast<int>(sp.plan.size()));
    EXPECT_EQ(nnz, t.nnz());
  }
}

TEST(ShardPlan, BalancesNnzAcrossDevices) {
  const CooTensor t = sorted_frostt("nell-2", 1.0 / 1024, 602);
  gpusim::DeviceGroup g(kSpec, 4);
  const ShardPlan sp = make_shard_plan(g, t, 0, 16, ExecConfig{}.devices(4));
  const nnz_t ideal = t.nnz() / 4;
  // Greedy nearest-cut against slice-snapped segments: each shard stays
  // within one realized segment of the ideal share.
  nnz_t max_seg = 0;
  for (const auto& s : sp.plan.segments) max_seg = std::max(max_seg, s.nnz());
  EXPECT_LE(sp.max_shard_nnz(), ideal + max_seg);
  for (const auto& sh : sp.shards) EXPECT_FALSE(sh.empty());
}

TEST(ShardPlan, MoreDevicesThanSegmentsLeavesTrailingShardsEmpty) {
  // A 3-entry tensor realizes at most 3 segments; the rest of an
  // 8-device group must idle (empty shards, zero launches).
  CooTensor t({8, 4});
  t.push({0, 0}, 1.0f);
  t.push({3, 1}, 2.0f);
  t.push({6, 2}, 3.0f);
  t.sort_by_mode(0);
  gpusim::DeviceGroup g(kSpec, 8);
  const ShardPlan sp = make_shard_plan(g, t, 0, 4, ExecConfig{}.devices(8));
  nnz_t covered = 0;
  int non_empty = 0;
  for (const auto& sh : sp.shards) {
    covered += sh.nnz;
    non_empty += sh.empty() ? 0 : 1;
  }
  EXPECT_EQ(covered, t.nnz());
  EXPECT_LE(non_empty, 3);
  EXPECT_GE(non_empty, 1);
}

TEST(ShardPlan, Validation) {
  CooTensor t = make_frostt_tensor("uber", 1.0 / 2048, 603);
  gpusim::DeviceGroup g(kSpec, 2);
  EXPECT_THROW(make_shard_plan(g, t, 1, 8, ExecConfig{}.devices(2)), Error);
  t.sort_by_mode(1);
  ExecConfig with_schedule = ExecConfig{}.devices(2);
  with_schedule.launch_schedule.push_back({});
  EXPECT_THROW(make_shard_plan(g, t, 1, 8, with_schedule), Error);
}

TEST(ShardPlan, SelectorPickIsSanityCheckedByCostModel) {
  // With a selector, every predicted launch must cost no more than the
  // static heuristic under the device cost model — the planner drops
  // selector extrapolations that the model says are slower.
  const CooTensor t = sorted_frostt("uber", 1.0 / 512, 604);
  AutoTunerConfig tcfg;
  tcfg.corpus_size = 16;
  tcfg.seed = 605;
  AutoTuner tuner(kSpec, tcfg);
  tuner.train();
  const LaunchSelector sel = tuner.selector();

  gpusim::DeviceGroup g(kSpec, 4);
  const ExecConfig cfg = ExecConfig{}.devices(4);
  const ShardPlan adaptive = make_shard_plan(g, t, 0, 16, cfg, &sel);
  ExecConfig static_cfg = cfg;
  static_cfg.adaptive_launch = false;
  const ShardPlan fixed = make_shard_plan(g, t, 0, 16, static_cfg, nullptr);

  for (std::size_t d = 0; d < adaptive.shards.size(); ++d) {
    const auto& dev = g.device(static_cast<int>(d));
    const auto& a = adaptive.shards[d];
    const auto& s = fixed.shards[d];
    ASSERT_EQ(a.launches.size(), s.launches.size());
    for (std::size_t i = 0; i < a.launches.size(); ++i) {
      const auto gi = static_cast<std::size_t>(a.seg_begin) + i;
      if (adaptive.plan.segments[gi].nnz() == 0) continue;
      const auto prof =
          mttkrp_profile(adaptive.plan.features[gi], 16, cfg.use_shared_mem);
      EXPECT_LE(dev.cost_model().kernel_ns(a.launches[i], prof),
                dev.cost_model().kernel_ns(s.launches[i], prof));
    }
  }
}

// ---------------------------------------------------------------------
// MultiPipelineExecutor
// ---------------------------------------------------------------------

TEST(MultiPipeline, MatchesReferenceOnEveryDeviceCount) {
  const CooTensor t = sorted_frostt("nips", 1.0 / 1024, 610);
  const auto f = random_factors(t, 16, 611);
  const DenseMatrix expect = mttkrp_coo_ref(t, f, 0);
  for (const int n : {1, 2, 3, 4, 8}) {
    gpusim::DeviceGroup g(kSpec, n);
    const auto res = run_multi_pipeline(g, t, f, 0, ExecConfig{}.devices(n));
    EXPECT_LT(DenseMatrix::max_abs_diff(res.output, expect), 2e-3)
        << n << " devices";
    EXPECT_EQ(res.total_ns, res.compute_ns + res.reduce_ns);
    sim_ns max_dev = 0;
    ASSERT_EQ(static_cast<int>(res.devices.size()), n);
    for (const auto& st : res.devices) max_dev = std::max(max_dev, st.total_ns);
    EXPECT_EQ(res.compute_ns, max_dev);
  }
}

TEST(MultiPipeline, ReductionIsDeterministic) {
  // Partials are summed in device order, so two runs are bit-identical
  // regardless of thread scheduling.
  const CooTensor t = sorted_frostt("vast", 1.0 / 1024, 612);
  const auto f = random_factors(t, 8, 613);
  gpusim::DeviceGroup g(kSpec, 4);
  const ExecConfig cfg = ExecConfig{}.devices(4);
  const auto a = run_multi_pipeline(g, t, f, 0, cfg);
  const auto b = run_multi_pipeline(g, t, f, 0, cfg);
  ASSERT_EQ(a.output.size(), b.output.size());
  EXPECT_EQ(std::memcmp(a.output.data(), b.output.data(),
                        a.output.size() * sizeof(value_t)),
            0);
  EXPECT_EQ(a.total_ns, b.total_ns);
}

TEST(MultiPipeline, SliceAlignedCutsNeedNoCollective) {
  // One nnz per mode-0 slice: every segment cut lands on a slice
  // boundary, shards own disjoint output rows, and the reduction
  // payload is empty.
  CooTensor t({64, 16});
  Rng rng(614);
  for (index_t i = 0; i < 64; ++i) {
    t.push({i, static_cast<index_t>(rng.next_u64() % 16)}, rng.next_float());
  }
  t.sort_by_mode(0);
  const auto f = random_factors(t, 8, 615);
  gpusim::DeviceGroup g(kSpec, 4);
  const auto res =
      run_multi_pipeline(g, t, f, 0, ExecConfig{}.devices(4).segments(8));
  EXPECT_EQ(res.reduce_ns, 0u);
  EXPECT_EQ(res.total_ns, res.compute_ns);
  EXPECT_LT(DenseMatrix::max_abs_diff(res.output, mttkrp_coo_ref(t, f, 0)),
            2e-3);
}

TEST(MultiPipeline, SplitSliceChargesTheLinkModel) {
  // A single mega slice must be split mid-slice to shard at all; both
  // neighbours then write the same output row and the link model
  // charges the chosen schedule over that boundary payload.
  const CooTensor t = mega_slice_tensor(4096);
  const auto f = random_factors(t, 8, 616);
  gpusim::DeviceGroup g(kSpec, 2);
  const auto res = run_multi_pipeline(
      g, t, f, 0,
      ExecConfig{}.devices(2).segments(4).reduction(
          gpusim::ReduceSchedule::Ring));
  EXPECT_EQ(res.reduce_schedule, gpusim::ReduceSchedule::Ring);
  EXPECT_GT(res.reduce_ns, 0u);
  EXPECT_EQ(res.total_ns, res.compute_ns + res.reduce_ns);
  EXPECT_LT(DenseMatrix::max_abs_diff(res.output, mttkrp_coo_ref(t, f, 0)),
            2e-3);
}

TEST(MultiPipeline, StrongScalingOnComputeBoundTensor) {
  const CooTensor t = sorted_frostt("nell-2", 1.0 / 512, 617);
  const auto f = random_factors(t, 16, 618);
  sim_ns prev = 0;
  for (const int n : {1, 2, 4}) {
    gpusim::DeviceGroup g(kSpec, n);
    const auto res = run_multi_pipeline(g, t, f, 0, ExecConfig{}.devices(n));
    if (n > 1) {
      EXPECT_LT(res.total_ns, prev) << n << " devices";
    }
    prev = res.total_ns;
  }
}

TEST(MultiPipeline, ReportsMergedMetrics) {
  const CooTensor t = sorted_frostt("uber", 1.0 / 1024, 619);
  const auto f = random_factors(t, 8, 620);
  obs::MetricsRegistry met;
  gpusim::DeviceGroup g(kSpec, 2);
  const auto res =
      run_multi_pipeline(g, t, f, 0, ExecConfig{}.devices(2).metrics(&met));
  EXPECT_EQ(met.counter("multidev/runs"), 1u);
  EXPECT_EQ(met.gauge("multidev/devices"), 2.0);
  EXPECT_EQ(met.gauge("multidev/total_ns"),
            static_cast<double>(res.total_ns));
  EXPECT_EQ(met.gauge("multidev/gpu0/nnz"),
            static_cast<double>(res.devices[0].nnz));
  EXPECT_GT(met.stage("host/shard_planning").count, 0u);
  // Per-device timelines land under the gpuN prefix.
  EXPECT_GT(met.counter("gpu0/kernel_launches"), 0u);
  EXPECT_GT(met.stage("gpu0/Kernel").count, 0u);
}

TEST(MultiPipeline, ValidatesConfigAgainstGroup) {
  const CooTensor t = sorted_frostt("uber", 1.0 / 2048, 621);
  const auto f = random_factors(t, 8, 622);
  gpusim::DeviceGroup g(kSpec, 2);
  // devices must match the group size.
  EXPECT_THROW(run_multi_pipeline(g, t, f, 0, ExecConfig{}.devices(4)),
               Error);
  // The CPU hybrid split is single-device only.
  EXPECT_THROW(run_multi_pipeline(g, t, f, 0,
                                  ExecConfig{}.devices(2).hybrid_threshold(8)),
               Error);
  // Mode-sorted input is required.
  CooTensor unsorted = t;
  unsorted.sort_by_mode(1);
  if (!unsorted.is_sorted_by_mode(0)) {
    EXPECT_THROW(
        run_multi_pipeline(g, unsorted, f, 0, ExecConfig{}.devices(2)),
        Error);
  }
}

}  // namespace
}  // namespace scalfrag
