// Observability layer: JSON writer/parser round-trips, the metrics
// registry, bench summarization, the BENCH_*.json schema, and the
// bench_compare regression gate (the contract the CI perf-smoke job
// leans on).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>

#include "common/error.hpp"
#include "obs/bench_compare.hpp"
#include "obs/bench_runner.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace scalfrag;
using scalfrag::obs::BenchCase;
using scalfrag::obs::BenchRunner;
using scalfrag::obs::CompareOptions;
using scalfrag::obs::CompareReport;
using scalfrag::obs::Direction;
using scalfrag::obs::JsonValue;
using scalfrag::obs::JsonWriter;
using scalfrag::obs::MetricsRegistry;
using scalfrag::obs::RepeatPolicy;

TEST(ObsJson, WriterParserRoundTrip) {
  JsonWriter w;
  w.begin_object()
      .kv("name", "bench \"quoted\"\n")
      .kv("pi", 3.25)
      .kv("count", std::uint64_t{42})
      .kv("neg", std::int64_t{-7})
      .kv("flag", true)
      .key("items")
      .begin_array()
      .value(1.0)
      .value("two")
      .null()
      .end_array()
      .key("nested")
      .begin_object()
      .kv("x", 0.5)
      .end_object()
      .end_object();

  const JsonValue v = JsonValue::parse(w.str());
  EXPECT_EQ(v.at("name").as_string(), "bench \"quoted\"\n");
  EXPECT_DOUBLE_EQ(v.at("pi").as_number(), 3.25);
  EXPECT_DOUBLE_EQ(v.at("count").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(v.at("neg").as_number(), -7.0);
  EXPECT_TRUE(v.at("flag").as_bool());
  const auto& items = v.at("items").as_array();
  ASSERT_EQ(items.size(), 3u);
  EXPECT_DOUBLE_EQ(items[0].as_number(), 1.0);
  EXPECT_EQ(items[1].as_string(), "two");
  EXPECT_TRUE(items[2].is_null());
  EXPECT_DOUBLE_EQ(v.at("nested").at("x").as_number(), 0.5);
  EXPECT_EQ(v.find("absent"), nullptr);
  EXPECT_THROW(v.at("absent"), Error);
}

TEST(ObsJson, ParserRejectsMalformedDocuments) {
  EXPECT_THROW(JsonValue::parse("{"), Error);
  EXPECT_THROW(JsonValue::parse("{\"a\": 1,}"), Error);
  EXPECT_THROW(JsonValue::parse("[1, 2] garbage"), Error);
  EXPECT_THROW(JsonValue::parse("\"unterminated"), Error);
  EXPECT_THROW(JsonValue::parse_file("/nonexistent/bench.json"), Error);
}

TEST(ObsJson, NonFiniteNumbersEmitNull) {
  JsonWriter w;
  w.begin_array().value(std::nan("")).value(1.5).end_array();
  const JsonValue v = JsonValue::parse(w.str());
  EXPECT_TRUE(v.as_array()[0].is_null());
  EXPECT_DOUBLE_EQ(v.as_array()[1].as_number(), 1.5);
}

TEST(ObsMetrics, CountersGaugesAndSpans) {
  MetricsRegistry m;
  EXPECT_TRUE(m.empty());
  m.count("launches");
  m.count("launches", 3);
  m.count("bytes", 1024);
  m.set("makespan_ns", 5e6);
  m.set("makespan_ns", 7e6);  // last write wins
  m.span("gpu/Kernel", 100.0);
  m.span("gpu/Kernel", 300.0);

  EXPECT_FALSE(m.empty());
  EXPECT_EQ(m.counter("launches"), 4u);
  EXPECT_EQ(m.counter("bytes"), 1024u);
  EXPECT_EQ(m.counter("missing"), 0u);
  EXPECT_DOUBLE_EQ(m.gauge("makespan_ns"), 7e6);
  const auto st = m.stage("gpu/Kernel");
  EXPECT_EQ(st.count, 2u);
  EXPECT_DOUBLE_EQ(st.total_ns, 400.0);
  EXPECT_DOUBLE_EQ(st.max_ns, 300.0);
  EXPECT_DOUBLE_EQ(st.mean_ns(), 200.0);

  {
    auto span = m.time_span("host/work");
    (void)span;
  }
  EXPECT_EQ(m.stage("host/work").count, 1u);
  EXPECT_GE(m.stage("host/work").total_ns, 0.0);
}

TEST(ObsMetrics, MergeAddsCountersAndFoldsStages) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.count("runs", 2);
  b.count("runs", 3);
  a.set("g", 1.0);
  b.set("g", 2.0);
  a.span("s", 10.0);
  b.span("s", 30.0);

  a.merge(b);
  EXPECT_EQ(a.counter("runs"), 5u);
  EXPECT_DOUBLE_EQ(a.gauge("g"), 2.0);  // gauges overwrite
  EXPECT_EQ(a.stage("s").count, 2u);
  EXPECT_DOUBLE_EQ(a.stage("s").total_ns, 40.0);
  EXPECT_DOUBLE_EQ(a.stage("s").max_ns, 30.0);

  a.clear();
  EXPECT_TRUE(a.empty());
}

TEST(ObsBench, SummarizeMedianAndQuartiles) {
  const auto s = scalfrag::obs::summarize({5.0, 1.0, 3.0, 2.0, 4.0});
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_LE(s.q1, s.median);
  EXPECT_GE(s.q3, s.median);
  EXPECT_GE(s.iqr(), 0.0);

  const auto one = scalfrag::obs::summarize({7.0});
  EXPECT_EQ(one.n, 1u);
  EXPECT_DOUBLE_EQ(one.median, 7.0);
  EXPECT_DOUBLE_EQ(one.iqr(), 0.0);
}

TEST(ObsBench, RunnerEmitsSchemaV1) {
  BenchRunner runner("unit");
  runner.with_case("t0")
      .set("kernel_us", 120.0, "us", Direction::kLowerIsBetter)
      .set("gflops", 55.0, "GF/s", Direction::kHigherIsBetter)
      .set("note", 1.0, "count", Direction::kInfo);
  runner.with_case("t1").add_sample("ms", 2.0, "ms", Direction::kInfo);
  runner.with_case("t1").add_sample("ms", 4.0, "ms", Direction::kInfo);
  runner.metrics().count("segments", 4);
  runner.metrics().set("makespan_ns", 123.0);
  runner.metrics().span("gpu/Kernel", 9.0);

  const JsonValue v = JsonValue::parse(runner.json());
  EXPECT_EQ(v.at("schema").as_string(), scalfrag::obs::kBenchSchemaName);
  EXPECT_DOUBLE_EQ(v.at("schema_version").as_number(),
                   scalfrag::obs::kBenchSchemaVersion);
  EXPECT_EQ(v.at("bench").as_string(), "unit");

  const auto& cases = v.at("cases").as_array();
  ASSERT_EQ(cases.size(), 2u);
  EXPECT_EQ(cases[0].at("name").as_string(), "t0");
  const JsonValue& kus = cases[0].at("metrics").at("kernel_us");
  EXPECT_DOUBLE_EQ(kus.at("value").as_number(), 120.0);
  EXPECT_EQ(kus.at("unit").as_string(), "us");
  EXPECT_EQ(kus.at("dir").as_string(), "lower_is_better");
  const JsonValue& ms = cases[1].at("metrics").at("ms");
  EXPECT_DOUBLE_EQ(ms.at("value").as_number(), 3.0);  // median of {2, 4}
  EXPECT_DOUBLE_EQ(ms.at("n").as_number(), 2.0);

  EXPECT_DOUBLE_EQ(
      v.at("metrics").at("counters").at("segments").as_number(), 4.0);
  EXPECT_DOUBLE_EQ(
      v.at("metrics").at("gauges").at("makespan_ns").as_number(), 123.0);
}

TEST(ObsBench, MeasureRunsWarmupThenReps) {
  BenchRunner runner("unit");
  int calls = 0;
  const RepeatPolicy policy{/*warmup=*/2, /*reps=*/3};
  const auto s = runner.with_case("c").measure(
      "v", "count", Direction::kInfo, policy, [&] {
        ++calls;
        return static_cast<double>(calls);
      });
  EXPECT_EQ(calls, 5);
  EXPECT_EQ(s.n, 3u);       // warmup calls are discarded
  EXPECT_DOUBLE_EQ(s.median, 4.0);  // samples {3, 4, 5}
}

TEST(ObsBench, DirectionNamesRoundTrip) {
  using scalfrag::obs::direction_from_name;
  using scalfrag::obs::direction_name;
  for (Direction d : {Direction::kLowerIsBetter, Direction::kHigherIsBetter,
                      Direction::kInfo}) {
    EXPECT_EQ(direction_from_name(direction_name(d)), d);
  }
  EXPECT_THROW(direction_from_name("sideways"), Error);
}

// --- bench_compare -----------------------------------------------------

JsonValue bench_doc(double kernel_us, double gflops, double wall_ms) {
  BenchRunner runner("gate");
  runner.with_case("nell-2")
      .set("kernel_us", kernel_us, "us", Direction::kLowerIsBetter)
      .set("gflops", gflops, "GF/s", Direction::kHigherIsBetter)
      .set("wall_ms", wall_ms, "ms", Direction::kInfo);
  return JsonValue::parse(runner.json());
}

TEST(ObsCompare, IdenticalRunsHaveNoRegression) {
  const JsonValue doc = bench_doc(100.0, 50.0, 8.0);
  const CompareReport rep = scalfrag::obs::compare_bench(doc, doc);
  EXPECT_FALSE(rep.has_regression());
  EXPECT_EQ(rep.regressions(), 0u);
  EXPECT_EQ(rep.improvements(), 0u);
  EXPECT_FALSE(scalfrag::obs::format_report(rep).empty());
}

TEST(ObsCompare, DetectsInjectedSlowdownPastThreshold) {
  const JsonValue base = bench_doc(100.0, 50.0, 8.0);
  // 12% slower kernel: regression for a lower_is_better metric at the
  // default 10% threshold.
  const CompareReport rep =
      scalfrag::obs::compare_bench(base, bench_doc(112.0, 50.0, 8.0));
  ASSERT_TRUE(rep.has_regression());
  ASSERT_EQ(rep.regressions(), 1u);
  bool found = false;
  for (const auto& d : rep.deltas) {
    if (!d.regression) continue;
    found = true;
    EXPECT_EQ(d.metric, "kernel_us");
    EXPECT_NEAR(d.rel_change, 0.12, 1e-9);
  }
  EXPECT_TRUE(found);

  // The same 12% is fine under a looser 20% threshold.
  CompareOptions loose;
  loose.threshold = 0.20;
  EXPECT_FALSE(scalfrag::obs::compare_bench(base, bench_doc(112.0, 50.0, 8.0),
                                            loose)
                   .has_regression());
}

TEST(ObsCompare, HigherIsBetterGatesDropsNotGains) {
  const JsonValue base = bench_doc(100.0, 50.0, 8.0);
  // Throughput drop of 20% regresses; a rise never does.
  EXPECT_TRUE(scalfrag::obs::compare_bench(base, bench_doc(100.0, 40.0, 8.0))
                  .has_regression());
  const CompareReport up =
      scalfrag::obs::compare_bench(base, bench_doc(100.0, 70.0, 8.0));
  EXPECT_FALSE(up.has_regression());
  EXPECT_EQ(up.improvements(), 1u);
}

TEST(ObsCompare, InfoMetricsAreNeverGated) {
  const JsonValue base = bench_doc(100.0, 50.0, 8.0);
  // wall_ms triples — machine noise by contract, never a regression.
  EXPECT_FALSE(scalfrag::obs::compare_bench(base, bench_doc(100.0, 50.0, 24.0))
                   .has_regression());
}

TEST(ObsCompare, MismatchedDocumentsThrow) {
  const JsonValue ok = bench_doc(100.0, 50.0, 8.0);
  BenchRunner other("different");
  other.with_case("c").set("m", 1.0, "x", Direction::kInfo);
  const JsonValue other_doc = JsonValue::parse(other.json());
  EXPECT_THROW(scalfrag::obs::compare_bench(ok, other_doc), Error);

  const JsonValue not_bench = JsonValue::parse("{\"schema\": \"nope\"}");
  EXPECT_THROW(scalfrag::obs::compare_bench(ok, not_bench), Error);
}

TEST(ObsCompare, StructuralAsymmetriesAreNotedNotGated) {
  const JsonValue base = bench_doc(100.0, 50.0, 8.0);
  BenchRunner cur("gate");
  cur.with_case("nell-2").set("kernel_us", 100.0, "us",
                              Direction::kLowerIsBetter);
  cur.with_case("extra").set("kernel_us", 5.0, "us",
                             Direction::kLowerIsBetter);
  const CompareReport rep =
      scalfrag::obs::compare_bench(base, JsonValue::parse(cur.json()));
  EXPECT_FALSE(rep.has_regression());
  EXPECT_FALSE(rep.notes.empty());
}

TEST(ObsCompare, FileVariantRoundTrips) {
  const std::string base_path = "obs_test_base.json";
  const std::string cur_path = "obs_test_cur.json";
  BenchRunner base("gate");
  base.with_case("c").set("kernel_us", 100.0, "us",
                          Direction::kLowerIsBetter);
  base.write(base_path);
  BenchRunner cur("gate");
  cur.with_case("c").set("kernel_us", 130.0, "us",
                         Direction::kLowerIsBetter);
  cur.write(cur_path);

  const CompareReport rep =
      scalfrag::obs::compare_bench_files(base_path, cur_path);
  EXPECT_TRUE(rep.has_regression());
  std::remove(base_path.c_str());
  std::remove(cur_path.c_str());
}

}  // namespace
