// Dense-oracle tests: the oracle must agree with the reference kernel
// (which defines correctness) within the tolerance model, its
// conditioning metadata must be exact, and the comparator must flag
// genuinely wrong outputs.

#include <gtest/gtest.h>

#include "testing/corpus.hpp"
#include "testing/diff_check.hpp"
#include "testing/oracle.hpp"
#include "tensor/generator.hpp"

namespace scalfrag::testing {
namespace {

TEST(Oracle, MatchesReferenceKernelOnFrosttProfile) {
  const CooTensor t = make_frostt_tensor("nell-2", 1.0 / 4096, 11);
  const FactorList f = conformance_factors(t, 16, 12);
  const OracleResult o = mttkrp_oracle(t, f, 0);
  const DenseMatrix ref = mttkrp_coo_ref(t, f, 0);
  const OracleDiff d = compare_to_oracle(o, ref, t.order());
  EXPECT_FALSE(d.diverged)
      << "ref vs oracle at (" << d.row << "," << d.col << "): got=" << d.got
      << " want=" << d.want << " tol=" << d.tol;
}

TEST(Oracle, ExactOnHandComputedTensor) {
  CooTensor t({2, 2, 2});
  t.push({0, 1, 1}, 2.0f);
  t.push({1, 0, 1}, 3.0f);
  FactorList f;
  for (order_t m = 0; m < 3; ++m) {
    DenseMatrix a(2, 2);
    a(0, 0) = 1.0f; a(0, 1) = 2.0f;
    a(1, 0) = 3.0f; a(1, 1) = 4.0f;
    f.push_back(std::move(a));
  }
  const OracleResult o = mttkrp_oracle(t, f, 0);
  // Row 0: 2 · A1(1,·) ⊙ A2(1,·) = 2·(3·3, 4·4) = (18, 32).
  EXPECT_DOUBLE_EQ(o.value(0, 0), 18.0);
  EXPECT_DOUBLE_EQ(o.value(0, 1), 32.0);
  // Row 1: 3 · A1(0,·) ⊙ A2(1,·) = 3·(1·3, 2·4) = (9, 24).
  EXPECT_DOUBLE_EQ(o.value(1, 0), 9.0);
  EXPECT_DOUBLE_EQ(o.value(1, 1), 24.0);
  EXPECT_EQ(o.term_count(0, 0), 1u);
  EXPECT_EQ(o.term_count(1, 1), 1u);
  EXPECT_DOUBLE_EQ(o.magnitude(0, 0), 18.0);
}

TEST(Oracle, DuplicateCoordinatesAccumulate) {
  CooTensor t({3, 3});
  t.push({1, 2}, 1.5f);
  t.push({1, 2}, 2.5f);  // exact duplicate coordinate
  FactorList f;
  f.emplace_back(3, 1, 1.0f);
  f.emplace_back(3, 1, 2.0f);
  const OracleResult o = mttkrp_oracle(t, f, 0);
  EXPECT_DOUBLE_EQ(o.value(1, 0), 8.0);  // (1.5 + 2.5) · 2
  EXPECT_EQ(o.term_count(1, 0), 2u);
}

TEST(Oracle, UntouchedCellsHaveZeroMagnitudeAndTinyTolerance) {
  CooTensor t({4, 3});
  t.push({2, 1}, 1.0f);
  FactorList f;
  f.emplace_back(4, 2, 1.0f);
  f.emplace_back(3, 2, 1.0f);
  const OracleResult o = mttkrp_oracle(t, f, 0);
  EXPECT_EQ(o.term_count(0, 0), 0u);
  EXPECT_DOUBLE_EQ(o.magnitude(0, 0), 0.0);
  const ToleranceModel model;
  EXPECT_LE(model.cell_tol(o, 0, 0, t.order()), 1e-19);
  // A misrouted write to an untouched row must therefore diverge.
  DenseMatrix wrong(4, 2);
  wrong(2, 0) = 1.0f; wrong(2, 1) = 1.0f;
  wrong(0, 0) = 1e-3f;  // ghost write
  const OracleDiff d = compare_to_oracle(o, wrong, t.order());
  EXPECT_TRUE(d.diverged);
  EXPECT_EQ(d.row, 0u);
  EXPECT_EQ(d.col, 0u);
}

TEST(Oracle, ToleranceScalesWithTermCountAndMagnitude) {
  const CooTensor t = make_archetype("mega_slice", 99, 1);
  const FactorList f = conformance_factors(t, 8, 100);
  const OracleResult o = mttkrp_oracle(t, f, 0);
  const ToleranceModel model;
  // Find a heavy and a light cell; the heavy one must get more slack.
  double heavy_tol = 0.0, light_tol = 1e300;
  for (index_t i = 0; i < o.rows; ++i) {
    for (index_t c = 0; c < o.cols; ++c) {
      const double tol = model.cell_tol(o, i, c, t.order());
      if (o.term_count(i, c) > 4) heavy_tol = std::max(heavy_tol, tol);
      if (o.term_count(i, c) == 1) light_tol = std::min(light_tol, tol);
    }
  }
  EXPECT_GT(heavy_tol, light_tol);
}

TEST(Oracle, ComparatorCatchesScaledAndShiftedOutputs) {
  const CooTensor t = make_archetype("uniform", 5, 1);
  const FactorList f = conformance_factors(t, 8, 6);
  const OracleResult o = mttkrp_oracle(t, f, 0);
  DenseMatrix good = mttkrp_coo_ref(t, f, 0);
  EXPECT_FALSE(compare_to_oracle(o, good, t.order()).diverged);

  DenseMatrix scaled = good;
  for (index_t i = 0; i < scaled.rows(); ++i) {
    for (index_t c = 0; c < scaled.cols(); ++c) scaled(i, c) *= 1.001f;
  }
  EXPECT_TRUE(compare_to_oracle(o, scaled, t.order()).diverged);
}

TEST(Oracle, RejectsShapeMismatch) {
  const CooTensor t = make_archetype("uniform", 5, 0);
  const FactorList f = conformance_factors(t, 4, 6);
  const OracleResult o = mttkrp_oracle(t, f, 0);
  const DenseMatrix wrong_shape(t.dim(0), 5);
  EXPECT_THROW(compare_to_oracle(o, wrong_shape, t.order()), Error);
}

TEST(Oracle, EmptyTensorIsAllZero) {
  const CooTensor t = make_archetype("empty", 1, 1);
  const FactorList f = conformance_factors(t, 4, 2);
  const OracleResult o = mttkrp_oracle(t, f, 1);
  for (double s : o.sum) EXPECT_EQ(s, 0.0);
  const DenseMatrix zero(t.dim(1), 4);
  EXPECT_FALSE(compare_to_oracle(o, zero, t.order()).diverged);
}

}  // namespace
}  // namespace scalfrag::testing
