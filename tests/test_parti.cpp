// ParTI baseline tests: functional correctness vs the reference, the
// static launch heuristic, and the synchronous end-to-end timeline.

#include <gtest/gtest.h>

#include "parti/parti_executor.hpp"
#include "tensor/generator.hpp"

namespace scalfrag {
namespace {

FactorList random_factors(const CooTensor& t, index_t rank,
                          std::uint64_t seed) {
  Rng rng(seed);
  FactorList f;
  for (order_t m = 0; m < t.order(); ++m) {
    DenseMatrix a(t.dim(m), rank);
    a.randomize(rng);
    f.push_back(std::move(a));
  }
  return f;
}

TEST(PartiKernel, DefaultLaunchHeuristic) {
  const auto spec = gpusim::DeviceSpec::rtx3090();
  auto cfg = parti::default_launch(spec, 1 << 20);
  EXPECT_EQ(cfg.block, 256u);
  EXPECT_EQ(cfg.grid, (1u << 20) / 256);
  // Caps at 32768 blocks.
  cfg = parti::default_launch(spec, 1ull << 30);
  EXPECT_EQ(cfg.grid, 32768u);
  // Tiny input still launches at least one block.
  cfg = parti::default_launch(spec, 5);
  EXPECT_EQ(cfg.grid, 1u);
}

TEST(PartiKernel, ProfileScalesWithTensor) {
  CooTensor t = make_frostt_tensor("nips", 1.0 / 2048, 31);
  const auto feat = TensorFeatures::extract(t, 0);
  const auto p16 = parti::mttkrp_profile(feat, 16);
  const auto p32 = parti::mttkrp_profile(feat, 32);
  EXPECT_EQ(p16.work_items, t.nnz());
  EXPECT_EQ(p16.flops, mttkrp_flops(t, 16));
  EXPECT_LT(p16.dram_bytes, p32.dram_bytes);
  EXPECT_EQ(p16.atomic_updates, t.nnz() * 16);
  EXPECT_EQ(p16.atomic_max_chain, static_cast<double>(feat.max_nnz_per_slice));
}

TEST(PartiExecutor, OutputMatchesReference) {
  CooTensor t = make_frostt_tensor("uber", 1.0 / 2048, 32);
  t.sort_by_mode(1);
  const auto f = random_factors(t, 16, 33);
  gpusim::SimDevice dev(gpusim::DeviceSpec::rtx3090());
  const auto res = parti::run_mttkrp(dev, t, f, 1);
  const auto expect = mttkrp_coo_ref(t, f, 1);
  EXPECT_LT(DenseMatrix::max_abs_diff(res.output, expect), 2e-3);
}

TEST(PartiExecutor, TimelineIsFullySynchronous) {
  CooTensor t = make_frostt_tensor("nell-2", 1.0 / 4096, 34);
  const auto f = random_factors(t, 16, 35);
  gpusim::SimDevice dev(gpusim::DeviceSpec::rtx3090());
  const auto res = parti::run_mttkrp(dev, t, f, 0);
  // Single stream → zero overlap: makespan equals the serial sum.
  EXPECT_EQ(res.breakdown.overlap_saved(), 0u);
  EXPECT_GT(res.breakdown.h2d, 0u);
  EXPECT_GT(res.breakdown.kernel, 0u);
  EXPECT_GT(res.breakdown.d2h, 0u);
  EXPECT_EQ(res.total_ns, res.breakdown.makespan);
}

TEST(PartiExecutor, H2dDominatesForLargeTensors) {
  // The Fig. 5 observation: transfers swamp the kernel.
  CooTensor t = make_frostt_tensor("deli-3d", 1.0 / 1024, 36);
  const auto f = random_factors(t, 16, 37);
  gpusim::SimDevice dev(gpusim::DeviceSpec::rtx3090());
  const auto res = parti::run_mttkrp(dev, t, f, 0);
  EXPECT_GT(res.breakdown.h2d, res.breakdown.kernel);
  EXPECT_GT(res.breakdown.h2d, res.breakdown.d2h);
}

TEST(PartiExecutor, LaunchOverrideChangesKernelTime) {
  CooTensor t = make_frostt_tensor("nips", 1.0 / 2048, 38);
  const auto f = random_factors(t, 16, 39);
  gpusim::SimDevice dev(gpusim::DeviceSpec::rtx3090());
  parti::ExecOptions bad;
  bad.launch = gpusim::LaunchConfig{16, 32, 0};  // starved machine
  const auto res_bad = parti::run_mttkrp(dev, t, f, 0, bad);
  const auto res_def = parti::run_mttkrp(dev, t, f, 0);
  EXPECT_GT(res_bad.kernel_ns, res_def.kernel_ns);
  EXPECT_LT(res_bad.kernel_gflops, res_def.kernel_gflops);
}

TEST(PartiExecutor, RequiresModeSortedInput) {
  CooTensor t({4, 4});
  t.push({3, 0}, 1.0f);
  t.push({0, 0}, 1.0f);
  const auto f = random_factors(t, 4, 40);
  gpusim::SimDevice dev(gpusim::DeviceSpec::rtx3090());
  EXPECT_THROW(parti::run_mttkrp(dev, t, f, 0), Error);
}

TEST(PartiExecutor, DeviceMemoryIsReleasedAfterRun) {
  CooTensor t = make_frostt_tensor("nips", 1.0 / 2048, 41);
  const auto f = random_factors(t, 16, 42);
  gpusim::SimDevice dev(gpusim::DeviceSpec::rtx3090());
  parti::run_mttkrp(dev, t, f, 0);
  EXPECT_EQ(dev.allocator().used(), 0u);
  EXPECT_GT(dev.allocator().peak(), t.bytes());
}

}  // namespace
}  // namespace scalfrag
