// Pipeline executor tests: functional correctness across every option
// combination, overlap/latency invariants, memory frugality.

#include <gtest/gtest.h>

#include "parti/parti_executor.hpp"
#include "scalfrag/pipeline.hpp"
#include "tensor/generator.hpp"

namespace scalfrag {
namespace {

const gpusim::DeviceSpec kSpec = gpusim::DeviceSpec::rtx3090();

FactorList random_factors(const CooTensor& t, index_t rank,
                          std::uint64_t seed) {
  Rng rng(seed);
  FactorList f;
  for (order_t m = 0; m < t.order(); ++m) {
    DenseMatrix a(t.dim(m), rank);
    a.randomize(rng);
    f.push_back(std::move(a));
  }
  return f;
}

TEST(Pipeline, OutputMatchesReferenceDefaults) {
  CooTensor t = make_frostt_tensor("nell-2", 1.0 / 4096, 71);
  const auto f = random_factors(t, 16, 72);
  gpusim::SimDevice dev(kSpec);
  PipelineExecutor exec(dev);
  const auto res = exec.run(t, f, 0);
  const auto expect = mttkrp_coo_ref(t, f, 0);
  EXPECT_LT(DenseMatrix::max_abs_diff(res.output, expect), 2e-3);
  EXPECT_EQ(res.launches.size(), res.plan.size());
}

TEST(Pipeline, OverlapBeatsSynchronousBaseline) {
  CooTensor t = make_frostt_tensor("nell-2", 1.0 / 2048, 73);
  const auto f = random_factors(t, 16, 74);
  gpusim::SimDevice dev(kSpec);

  const auto sync = parti::run_mttkrp(dev, t, f, 0);
  PipelineExecutor exec(dev);
  const auto piped = exec.run(t, f, 0);

  EXPECT_LT(piped.total_ns, sync.total_ns);
  EXPECT_GT(piped.breakdown.overlap_saved(), 0u);
}

TEST(Pipeline, SingleStreamSingleSegmentHasNoOverlap) {
  CooTensor t = make_frostt_tensor("nips", 1.0 / 2048, 75);
  const auto f = random_factors(t, 16, 76);
  gpusim::SimDevice dev(kSpec);
  PipelineExecutor exec(dev);
  ExecConfig opt;
  opt.num_segments = 1;
  opt.num_streams = 1;
  const auto res = exec.run(t, f, 0, opt);
  EXPECT_EQ(res.breakdown.overlap_saved(), 0u);
  ASSERT_EQ(res.plan.size(), 1u);
}

TEST(Pipeline, StaticLaunchFallbackWithoutSelector) {
  CooTensor t = make_frostt_tensor("uber", 1.0 / 2048, 77);
  const auto f = random_factors(t, 16, 78);
  gpusim::SimDevice dev(kSpec);
  PipelineExecutor exec(dev, nullptr);
  ExecConfig opt;
  opt.adaptive_launch = true;  // requested but no selector available
  const auto res = exec.run(t, f, 0, opt);
  for (const auto& l : res.launches) {
    EXPECT_EQ(l.block, 256u);  // ParTI heuristic
  }
  EXPECT_DOUBLE_EQ(res.selection_seconds, 0.0);
}

TEST(Pipeline, LaunchOverrideIsHonored) {
  CooTensor t = make_frostt_tensor("uber", 1.0 / 2048, 79);
  const auto f = random_factors(t, 16, 80);
  gpusim::SimDevice dev(kSpec);
  PipelineExecutor exec(dev);
  ExecConfig opt;
  opt.launch_override = gpusim::LaunchConfig{512, 128, 0};
  const auto res = exec.run(t, f, 0, opt);
  for (const auto& l : res.launches) {
    EXPECT_EQ(l.grid, 512u);
    EXPECT_EQ(l.block, 128u);
    // shmem injected for the shared-memory kernel.
    EXPECT_EQ(l.shmem_per_block, kernel_shmem_bytes(128, 16));
  }
}

TEST(Pipeline, HybridSplitsWorkAndStaysCorrect) {
  CooTensor t = make_frostt_tensor("enron", 1.0 / 4096, 81);
  const auto f = random_factors(t, 16, 82);
  gpusim::SimDevice dev(kSpec);
  PipelineExecutor exec(dev);
  ExecConfig opt;
  // Threshold just above the mean slice size: a skewed tensor always
  // has sub-mean slices, so the CPU share is guaranteed non-empty.
  const auto feat = TensorFeatures::extract(t, 0);
  opt.hybrid_cpu_threshold = static_cast<nnz_t>(feat.avg_nnz_per_slice) + 1;
  const auto res = exec.run(t, f, 0, opt);
  EXPECT_GT(res.cpu_nnz, 0u);
  EXPECT_GT(res.cpu_task_ns, 0u);
  const auto expect = mttkrp_coo_ref(t, f, 0);
  EXPECT_LT(DenseMatrix::max_abs_diff(res.output, expect), 2e-3);
}

TEST(Pipeline, RunPerformsZeroTensorCopies) {
  CooTensor t = make_frostt_tensor("enron", 1.0 / 4096, 95);
  const auto f = random_factors(t, 16, 96);
  gpusim::SimDevice dev(kSpec);
  PipelineExecutor exec(dev);
  ExecConfig opt;
  opt.num_segments = 6;
  // Hybrid on, all-CPU slices routed as zero-copy ranges too.
  const auto feat = TensorFeatures::extract(t, 0);
  opt.hybrid_cpu_threshold = static_cast<nnz_t>(feat.avg_nnz_per_slice) + 1;
  const std::uint64_t extracts_before = CooTensor::extract_calls();
  const auto res = exec.run(t, f, 0, opt);
  // Segments and the hybrid CPU share are CooSpan views into the parent;
  // the only owning copy a run may make is the hybrid GPU compaction,
  // which goes through push(), not extract(). The process-wide extract
  // counter therefore must not move.
  EXPECT_EQ(CooTensor::extract_calls(), extracts_before);
  const auto expect = mttkrp_coo_ref(t, f, 0);
  EXPECT_LT(DenseMatrix::max_abs_diff(res.output, expect), 2e-3);
}

TEST(Pipeline, HostExecKnobKeepsResultsCorrect) {
  CooTensor t = make_frostt_tensor("nell-2", 1.0 / 4096, 97);
  const auto f = random_factors(t, 16, 98);
  gpusim::SimDevice dev(kSpec);
  PipelineExecutor exec(dev);
  const auto expect = mttkrp_coo_ref(t, f, 0);
  for (HostStrategy s : {HostStrategy::Auto, HostStrategy::Serial,
                         HostStrategy::PrivateReduce}) {
    ExecConfig opt;
    opt.num_segments = 3;
    opt.host_exec.strategy = s;
    opt.host_exec.grain_nnz = 64;  // force the parallel paths to engage
    const auto res = exec.run(t, f, 0, opt);
    EXPECT_LT(DenseMatrix::max_abs_diff(res.output, expect), 2e-3)
        << host_strategy_name(s);
  }
}

TEST(Pipeline, SharedMemOffStillCorrectButSlowerKernels) {
  CooTensor t = make_frostt_tensor("nell-2", 1.0 / 4096, 83);
  const auto f = random_factors(t, 16, 84);
  gpusim::SimDevice dev(kSpec);
  PipelineExecutor exec(dev);
  ExecConfig on, off;
  off.use_shared_mem = false;
  const auto r_on = exec.run(t, f, 0, on);
  const auto r_off = exec.run(t, f, 0, off);
  const auto expect = mttkrp_coo_ref(t, f, 0);
  EXPECT_LT(DenseMatrix::max_abs_diff(r_off.output, expect), 2e-3);
  EXPECT_GT(r_off.breakdown.kernel, r_on.breakdown.kernel);
}

TEST(Pipeline, MoreSegmentsBoundDeviceMemory) {
  CooTensor t = make_frostt_tensor("nell-2", 1.0 / 2048, 85);
  const auto f = random_factors(t, 16, 86);
  gpusim::SimDevice dev(kSpec);
  PipelineExecutor exec(dev);

  ExecConfig few, many;
  few.num_segments = 1;
  few.num_streams = 1;
  many.num_segments = 16;
  many.num_streams = 2;

  dev.allocator().reset_peak();
  exec.run(t, f, 0, few);
  const std::size_t peak_few = dev.allocator().peak();
  dev.allocator().reset_peak();
  exec.run(t, f, 0, many);
  const std::size_t peak_many = dev.allocator().peak();
  EXPECT_LT(peak_many, peak_few);
}

TEST(Pipeline, ResultInvariantToSegmentsAndStreams) {
  CooTensor t = make_frostt_tensor("flickr-4d", 1.0 / 8192, 87);
  const auto f = random_factors(t, 8, 88);
  gpusim::SimDevice dev(kSpec);
  PipelineExecutor exec(dev);
  const auto expect = mttkrp_coo_ref(t, f, 0);
  for (int segs : {1, 3, 8}) {
    for (int streams : {1, 4}) {
      ExecConfig opt;
      opt.num_segments = segs;
      opt.num_streams = streams;
      const auto res = exec.run(t, f, 0, opt);
      EXPECT_LT(DenseMatrix::max_abs_diff(res.output, expect), 2e-3)
          << segs << "x" << streams;
    }
  }
}

TEST(Pipeline, RejectsBadOptions) {
  CooTensor t = make_frostt_tensor("nips", 1.0 / 4096, 89);
  const auto f = random_factors(t, 8, 90);
  gpusim::SimDevice dev(kSpec);
  PipelineExecutor exec(dev);
  ExecConfig opt;
  opt.num_segments = -1;  // 0 means auto; negatives are invalid
  EXPECT_THROW(exec.run(t, f, 0, opt), Error);
  CooTensor unsorted({4, 4});
  unsorted.push({3, 0}, 1.0f);
  unsorted.push({0, 0}, 1.0f);
  FactorList f2;
  f2.emplace_back(4, 4);
  f2.emplace_back(4, 4);
  EXPECT_THROW(exec.run(unsorted, f2, 0), Error);
}

TEST(Pipeline, PartialLaunchScheduleFallsBackPerSegment) {
  CooTensor t = make_frostt_tensor("nell-2", 1.0 / 4096, 93);
  const auto f = random_factors(t, 16, 94);
  gpusim::SimDevice dev(kSpec);
  PipelineExecutor exec(dev, nullptr);
  ExecConfig opt;
  opt.num_segments = 4;
  // Schedule only the first segment; the rest use the static fallback.
  opt.launch_schedule = {gpusim::LaunchConfig{64, 64, 0}};
  const auto res = exec.run(t, f, 0, opt);
  ASSERT_GE(res.launches.size(), 2u);
  EXPECT_EQ(res.launches[0].grid, 64u);
  EXPECT_EQ(res.launches[0].block, 64u);
  EXPECT_EQ(res.launches[1].block, 256u);  // ParTI heuristic
  EXPECT_LT(DenseMatrix::max_abs_diff(res.output, mttkrp_coo_ref(t, f, 0)),
            2e-3);
}

TEST(Pipeline, RejectsScheduleLongerThanRealizedPlan) {
  // Two slices of 4 nnz each: asking for 3 segments realizes only 2
  // (slice-aligned cuts snap forward past the requested boundary). A
  // schedule sized to the *request* would silently pair configs with
  // the wrong segments — the executor must reject it.
  CooTensor t({2, 8});
  for (index_t s = 0; s < 2; ++s) {
    for (index_t j = 0; j < 4; ++j) t.push({s, j}, 1.0f);
  }
  t.sort_by_mode(0);
  ASSERT_EQ(make_segments(t, 0, 3).size(), 2u);  // the premise
  const auto f = random_factors(t, 4, 95);
  gpusim::SimDevice dev(kSpec);
  PipelineExecutor exec(dev, nullptr);
  ExecConfig opt;
  opt.num_segments = 3;
  opt.launch_schedule.assign(3, gpusim::LaunchConfig{32, 64, 0});
  EXPECT_THROW(exec.run(t, f, 0, opt), Error);
  // Sized from the realized plan, the same schedule is honored 1:1.
  opt.launch_schedule.assign(2, gpusim::LaunchConfig{32, 64, 0});
  const auto res = exec.run(t, f, 0, opt);
  ASSERT_EQ(res.launches.size(), 2u);
  EXPECT_EQ(res.launches[0].grid, 32u);
  EXPECT_EQ(res.launches[1].grid, 32u);
}

TEST(Pipeline, MetricsRecordPhasesAndTimeline) {
  CooTensor t = make_frostt_tensor("nell-2", 1.0 / 4096, 96);
  const auto f = random_factors(t, 8, 97);
  gpusim::SimDevice dev(kSpec);
  PipelineExecutor exec(dev, nullptr);
  obs::MetricsRegistry m;
  ExecConfig opt;
  opt.num_segments = 4;
  opt.hybrid_cpu_threshold = 4;
  opt.metrics_sink = &m;
  const auto res = exec.run(t, f, 0, opt);
  EXPECT_EQ(m.counter("pipeline/runs"), 1u);
  EXPECT_EQ(m.counter("pipeline/segments_realized"), res.plan.size());
  EXPECT_EQ(m.counter("pipeline/cpu_nnz"), res.cpu_nnz);
  EXPECT_GT(m.stage("host/segmentation").count, 0u);
  // The device timeline lands as simulated spans + utilization gauges.
  EXPECT_EQ(m.stage("gpu/Kernel").count, res.plan.size());
  EXPECT_GT(m.counter("gpu/h2d_bytes"), 0u);
  EXPECT_EQ(m.gauge("gpu/makespan_ns"), static_cast<double>(res.total_ns));
  // Kernel bodies report through the same sink via the host engine.
  EXPECT_GT(m.counter("host/calls"), 0u);
}

// Sweep: every (segments, streams) cell of the Fig. 11 grid stays
// functionally correct and finishes.
class PipelineGrid
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PipelineGrid, CorrectAcrossFig11Grid) {
  const auto [segs, streams] = GetParam();
  CooTensor t = make_frostt_tensor("uber", 1.0 / 4096, 91);
  const auto f = random_factors(t, 8, 92);
  gpusim::SimDevice dev(kSpec);
  PipelineExecutor exec(dev);
  ExecConfig opt;
  opt.num_segments = segs;
  opt.num_streams = streams;
  const auto res = exec.run(t, f, 0, opt);
  const auto expect = mttkrp_coo_ref(t, f, 0);
  EXPECT_LT(DenseMatrix::max_abs_diff(res.output, expect), 2e-3);
  EXPECT_GT(res.total_ns, 0u);
}

INSTANTIATE_TEST_SUITE_P(Fig11Grid, PipelineGrid,
                         ::testing::Combine(::testing::Values(1, 2, 4, 8, 16),
                                            ::testing::Values(1, 2, 4, 8)));

}  // namespace
}  // namespace scalfrag
