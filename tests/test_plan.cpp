// MttkrpPlan tests: planned execution equals ad-hoc execution,
// selection cost is paid once, and CPD uses the plan transparently.
// Also covers the simulated SpTTM executor.

#include <gtest/gtest.h>

#include <optional>

#include "parti/parti_executor.hpp"
#include "scalfrag/cpd.hpp"
#include "scalfrag/plan.hpp"
#include "tensor/generator.hpp"

namespace scalfrag {
namespace {

const gpusim::DeviceSpec kSpec = gpusim::DeviceSpec::rtx3090();

FactorList random_factors(const CooTensor& t, index_t rank,
                          std::uint64_t seed) {
  Rng rng(seed);
  FactorList f;
  for (order_t m = 0; m < t.order(); ++m) {
    DenseMatrix a(t.dim(m), rank);
    a.randomize(rng);
    f.push_back(std::move(a));
  }
  return f;
}

LaunchSelector trained_selector() {
  AutoTunerConfig cfg;
  cfg.corpus_size = 16;
  cfg.seed = 501;
  AutoTuner tuner(kSpec, cfg);
  tuner.train();
  return tuner.selector();
}

TEST(MttkrpPlan, PlannedRunMatchesAdHocRun) {
  const LaunchSelector sel = trained_selector();
  gpusim::SimDevice dev(kSpec);
  const CooTensor t = make_frostt_tensor("nell-2", 1.0 / 2048, 502);
  const auto f = random_factors(t, 16, 503);

  const MttkrpPlan plan(t, 16, dev, &sel);
  for (order_t m = 0; m < t.order(); ++m) {
    const auto planned = plan.run(f, m);

    CooTensor sorted = t;
    sorted.sort_by_mode(m);
    PipelineExecutor exec(dev, &sel);
    ExecConfig opt;
    opt.num_segments = static_cast<int>(plan.mode(m).segments.size());
    const auto adhoc = exec.run(sorted, f, m, opt);

    EXPECT_LT(DenseMatrix::max_abs_diff(planned.output, adhoc.output), 2e-3);
    EXPECT_EQ(planned.total_ns, adhoc.total_ns);
    // The plan replays precomputed launches: no online selection cost.
    EXPECT_DOUBLE_EQ(planned.selection_seconds, 0.0);
    EXPECT_EQ(planned.launches, plan.mode(m).launch_schedule);
  }
  EXPECT_GT(plan.prepare_seconds(), 0.0);
}

TEST(MttkrpPlan, SchedulesOneLaunchPerSegment) {
  gpusim::SimDevice dev(kSpec);
  const CooTensor t = make_frostt_tensor("uber", 1.0 / 2048, 504);
  const MttkrpPlan plan(t, 8, dev, nullptr);
  for (order_t m = 0; m < t.order(); ++m) {
    EXPECT_EQ(plan.mode(m).launch_schedule.size(),
              plan.mode(m).segments.size());
    EXPECT_TRUE(plan.view(m).is_sorted_by_mode(m));
    EXPECT_EQ(plan.mode(m).features.nnz, t.nnz());
  }
}

TEST(MttkrpPlan, Validation) {
  gpusim::SimDevice dev(kSpec);
  CooTensor empty({4, 4});
  EXPECT_THROW(MttkrpPlan(empty, 8, dev, nullptr), Error);
  CooTensor t({4, 4});
  t.push({0, 0}, 1.0f);
  EXPECT_THROW(MttkrpPlan(t, 0, dev, nullptr), Error);
  const MttkrpPlan plan(t, 8, dev, nullptr);
  const auto f = random_factors(t, 8, 505);
  EXPECT_THROW(plan.run(f, 5), Error);
}

TEST(MttkrpPlan, ExplicitSegmentCountIsHonored) {
  gpusim::SimDevice dev(kSpec);
  const CooTensor t = make_frostt_tensor("nell-2", 1.0 / 2048, 506);
  ExecConfig opt;
  opt.num_segments = 3;
  const MttkrpPlan plan(t, 8, dev, nullptr, opt);
  EXPECT_LE(plan.mode(0).segments.size(), 3u);
  EXPECT_GE(plan.mode(0).segments.size(), 2u);  // slice snapping may merge
}

TEST(MttkrpPlan, ConfigIsCopiedByValueAtConstruction) {
  // Regression for the former dangling-options bug: the plan must own
  // its ExecConfig, so mutating or destroying the caller's config after
  // construction cannot change replays. Only the metrics registry the
  // sink *points at* has to outlive run() — that part is documented,
  // not copied.
  gpusim::SimDevice dev(kSpec);
  const CooTensor t = make_frostt_tensor("uber", 1.0 / 2048, 509);
  const auto f = random_factors(t, 8, 510);
  obs::MetricsRegistry met;

  std::optional<ExecConfig> caller;
  caller.emplace(ExecConfig{}.segments(2).streams(2).metrics(&met));
  const MttkrpPlan plan(t, 8, dev, nullptr, *caller);
  const auto before = plan.run(f, 0);

  // Clobber, then destroy, the caller's config.
  caller->segments(7).streams(1).shared_mem(false).metrics(nullptr);
  caller.reset();

  const auto after = plan.run(f, 0);
  EXPECT_EQ(plan.config().num_segments, 2);
  EXPECT_EQ(plan.config().num_streams, 2);
  EXPECT_EQ(after.total_ns, before.total_ns);
  EXPECT_EQ(after.launches, before.launches);
  // The copied sink still records into the caller's registry.
  EXPECT_GE(met.counter("pipeline/runs"), 2u);
}

TEST(MttkrpPlan, SingleSortKeepsMemoryBelowPerModeCopies) {
  // Regression for the former one-sorted-copy-per-mode scheme: the plan
  // now holds one canonical copy plus per-mode permutations, which for
  // any order-3 tensor is at most half the old N-copies footprint.
  gpusim::SimDevice dev(kSpec);
  const CooTensor t = make_frostt_tensor("nell-2", 1.0 / 2048, 512);
  ASSERT_EQ(t.order(), 3);
  obs::MetricsRegistry met;
  const MttkrpPlan plan(t, 8, dev, nullptr, ExecConfig{}.metrics(&met));
  EXPECT_FALSE(plan.views().materialized());
  EXPECT_LE(plan.resident_bytes() * 2, ModeViews::legacy_copies_bytes(t));
  // The resident gauge tracks the plan's tensor residency, and the peak
  // never reached the legacy bound either.
  EXPECT_EQ(met.gauge(ModeViews::kResidentGauge),
            static_cast<double>(plan.resident_bytes()));
  const double peak =
      met.gauge(std::string(ModeViews::kResidentGauge) + "_peak");
  EXPECT_GE(peak, met.gauge(ModeViews::kResidentGauge));
  EXPECT_LE(peak * 2,
            static_cast<double>(ModeViews::legacy_copies_bytes(t)));
}

TEST(MttkrpPlan, RejectsMultiDeviceConfigs) {
  gpusim::SimDevice dev(kSpec);
  const CooTensor t = make_frostt_tensor("uber", 1.0 / 2048, 511);
  EXPECT_THROW(MttkrpPlan(t, 8, dev, nullptr, ExecConfig{}.devices(2)),
               Error);
}

TEST(Spttm, SimulatedExecutorMatchesHostKernel) {
  gpusim::SimDevice dev(kSpec);
  const CooTensor t = make_frostt_tensor("nips", 1.0 / 4096, 507);
  Rng rng(508);
  DenseMatrix u(t.dim(1), 8);
  u.randomize(rng);

  const auto res = parti::run_spttm(dev, t, u, 1);
  const SemiSparseTensor expect = spttm(t, u, 1);
  ASSERT_EQ(res.output.num_fibers(), expect.num_fibers());
  EXPECT_LT(DenseMatrix::max_abs_diff(res.output.values, expect.values),
            2e-3);
  // Synchronous flow: transfers + kernel, no overlap.
  EXPECT_EQ(res.breakdown.overlap_saved(), 0u);
  EXPECT_GT(res.breakdown.kernel, 0u);
  EXPECT_GT(res.breakdown.h2d, 0u);
  EXPECT_GT(res.breakdown.d2h, 0u);
  EXPECT_EQ(dev.allocator().used(), 0u);
}

}  // namespace
}  // namespace scalfrag
