// Slice-reordering tests: permutation correctness, MTTKRP equivalence
// under relabeling, and the load-balance improvement it exists for.

#include <gtest/gtest.h>

#include "tensor/generator.hpp"
#include "tensor/mttkrp_ref.hpp"
#include "tensor/reorder.hpp"

namespace scalfrag {
namespace {

TEST(Reorder, SliceOrderSortsByDescendingNnz) {
  CooTensor t({4, 8});
  t.push({2, 0}, 1.0f);  // slice 2: 1 nnz
  for (index_t j = 0; j < 5; ++j) t.push({1, j}, 1.0f);  // slice 1: 5
  for (index_t j = 0; j < 3; ++j) t.push({3, j}, 1.0f);  // slice 3: 3
  const auto perm = slice_order_by_nnz(t, 0);
  ASSERT_EQ(perm.size(), 4u);
  EXPECT_EQ(perm[0], 1u);
  EXPECT_EQ(perm[1], 3u);
  EXPECT_EQ(perm[2], 2u);
  EXPECT_EQ(perm[3], 0u);  // empty slice last
}

TEST(Reorder, InvertPermutationRoundTrip) {
  const std::vector<index_t> perm = {3, 0, 2, 1};
  const auto inv = invert_permutation(perm);
  EXPECT_EQ(inv, (std::vector<index_t>{1, 3, 2, 0}));
  EXPECT_EQ(invert_permutation(inv), perm);
  EXPECT_THROW(invert_permutation({0, 0}), Error);
  EXPECT_THROW(invert_permutation({0, 5}), Error);
}

TEST(Reorder, RelabelKeepsValuesAndOtherModes) {
  CooTensor t({3, 4});
  t.push({0, 1}, 1.0f);
  t.push({2, 3}, 2.0f);
  // perm: new 0 ← old 2, new 1 ← old 0, new 2 ← old 1.
  const std::vector<index_t> perm = {2, 0, 1};
  const CooTensor r = relabel_mode(t, 0, perm);
  ASSERT_EQ(r.nnz(), 2u);
  // old (2,3) → new index 0; old (0,1) → new index 1.
  EXPECT_EQ(r.index(0, 0), 0u);
  EXPECT_EQ(r.index(1, 0), 3u);
  EXPECT_FLOAT_EQ(r.value(0), 2.0f);
  EXPECT_EQ(r.index(0, 1), 1u);
  EXPECT_EQ(r.index(1, 1), 1u);
}

TEST(Reorder, PermuteRowsMatchesDefinition) {
  DenseMatrix m(3, 2);
  for (index_t i = 0; i < 3; ++i) {
    m(i, 0) = static_cast<value_t>(i);
    m(i, 1) = static_cast<value_t>(10 * i);
  }
  const std::vector<index_t> perm = {2, 0, 1};
  const DenseMatrix p = permute_rows(m, perm);
  EXPECT_FLOAT_EQ(p(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(p(1, 1), 0.0f);
  EXPECT_FLOAT_EQ(p(2, 0), 1.0f);
  EXPECT_THROW(permute_rows(m, {0, 1}), Error);
}

TEST(Reorder, MttkrpCommutesWithRelabeling) {
  // MTTKRP(relabel(X)) with permuted factors equals permuted
  // MTTKRP(X): the semantic-preservation contract of reordering.
  const CooTensor t = make_frostt_tensor("nips", 1.0 / 4096, 221);
  Rng rng(222);
  FactorList f;
  for (order_t m = 0; m < t.order(); ++m) {
    DenseMatrix a(t.dim(m), 8);
    a.randomize(rng);
    f.push_back(std::move(a));
  }
  const DenseMatrix direct = mttkrp_coo_ref(t, f, 0);

  const auto perm = slice_order_by_nnz(t, 0);
  const CooTensor relabeled = relabel_mode(t, 0, perm);
  FactorList f2 = f;
  f2[0] = permute_rows(f[0], perm);  // mode-0 factor rows follow slices
  const DenseMatrix reordered = mttkrp_coo_ref(relabeled, f2, 0);

  const DenseMatrix expected = permute_rows(direct, perm);
  EXPECT_LT(DenseMatrix::max_abs_diff(expected, reordered), 1e-3);
}

TEST(Reorder, ImprovesChunkedBalanceOnSkewedTensor) {
  const CooTensor t = make_frostt_tensor("nell-2", 1.0 / 2048, 223);
  const double before = chunked_imbalance(t, 0, 8);
  const auto perm = slice_order_by_nnz(t, 0);
  const CooTensor r = relabel_mode(t, 0, perm);
  const double after = chunked_imbalance(r, 0, 8);
  // Descending-size relabeling concentrates heavy slices in the first
  // chunks; imbalance metric must not get better than 1 but reordering
  // by size typically reduces max/mean dispersion vs the random layout.
  EXPECT_GE(before, 1.0);
  EXPECT_GE(after, 1.0);
  EXPECT_LE(after, before * 1.05);
}

TEST(Reorder, ChunkedImbalanceValidation) {
  CooTensor t({4, 4});
  t.push({1, 0}, 1.0f);
  EXPECT_THROW(chunked_imbalance(t, 0, 0), Error);
  EXPECT_DOUBLE_EQ(chunked_imbalance(CooTensor({4, 4}), 0, 2), 1.0);
  // Perfectly balanced: one nnz per slice, chunk 2.
  CooTensor b({4, 4});
  for (index_t i = 0; i < 4; ++i) b.push({i, 0}, 1.0f);
  EXPECT_DOUBLE_EQ(chunked_imbalance(b, 0, 2), 1.0);
}

}  // namespace
}  // namespace scalfrag
