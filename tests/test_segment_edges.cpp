// Edge-case coverage for the segmenter and the pipeline executor:
// empty tensors, single-entry tensors, and budgets/segment counts that
// are pathological relative to the slice structure.

#include <gtest/gtest.h>

#include "scalfrag/pipeline.hpp"
#include "scalfrag/segmenter.hpp"
#include "testing/corpus.hpp"
#include "testing/diff_check.hpp"
#include "tensor/mttkrp_ref.hpp"

namespace scalfrag {
namespace {

using testing::conformance_factors;
using testing::make_archetype;

DenseMatrix run_pipeline(const CooTensor& t, const FactorList& f, order_t mode,
                         int segments, int streams) {
  gpusim::SimDevice dev(gpusim::DeviceSpec::rtx3090());
  PipelineExecutor exec(dev);
  ExecConfig opt;
  opt.num_segments = segments;
  opt.num_streams = streams;
  return exec.run(t, f, mode, opt).output;
}

TEST(SegmentEdges, EmptyTensorYieldsOneEmptySegment) {
  const CooTensor t = make_archetype("empty", 1);
  const SegmentPlan plan = make_segments(t, 0, 4, true, true);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan.segments[0].nnz(), 0u);
  EXPECT_TRUE(plan.segments[0].slice_aligned);
  ASSERT_EQ(plan.features.size(), 1u);
  EXPECT_EQ(plan.features[0].nnz, 0u);
  EXPECT_EQ(plan.max_nnz(), 0u);
}

TEST(SegmentEdges, EmptyTensorThroughPipelineIsAllZero) {
  const CooTensor t = make_archetype("empty", 1);
  const FactorList f = conformance_factors(t, 6, 3);
  for (int segments : {0, 1, 5}) {
    const DenseMatrix out = run_pipeline(t, f, 1, segments, 2);
    ASSERT_EQ(out.rows(), t.dim(1));
    for (index_t i = 0; i < out.rows(); ++i) {
      for (index_t c = 0; c < out.cols(); ++c) EXPECT_EQ(out(i, c), 0.0f);
    }
  }
}

TEST(SegmentEdges, SingleNnzSurvivesExcessSegments) {
  CooTensor t = make_archetype("single_nnz", 9);
  t.sort_by_mode(0);
  const SegmentPlan plan = make_segments(t, 0, 16);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan.segments[0].nnz(), 1u);

  const FactorList f = conformance_factors(t, 4, 5);
  const DenseMatrix want = mttkrp_coo_ref(t, f, 0);
  const DenseMatrix got = run_pipeline(t, f, 0, 16, 4);
  EXPECT_LT(DenseMatrix::max_abs_diff(got, want), 1e-6);
}

TEST(SegmentEdges, MoreSegmentsThanEntriesCoversExactly) {
  CooTensor t = make_archetype("uniform", 21, 0);
  t.sort_by_mode(0);
  const SegmentPlan plan = make_segments(t, 0, 1000);
  nnz_t covered = 0;
  nnz_t prev_end = 0;
  for (const Segment& s : plan.segments) {
    EXPECT_EQ(s.begin, prev_end) << "segments must tile [0, nnz)";
    EXPECT_GT(s.nnz(), 0u);
    covered += s.nnz();
    prev_end = s.end;
  }
  EXPECT_EQ(covered, t.nnz());
  EXPECT_LE(plan.size(), static_cast<std::size_t>(t.nnz()));
}

TEST(SegmentEdges, BudgetSmallerThanOneSliceForcesSliceSplit) {
  // One slice holds ~85% of the entries; a per-segment target far below
  // that slice's size must split it and flag the cut non-aligned.
  CooTensor t = make_archetype("mega_slice", 17, 1);
  t.sort_by_mode(0);
  const TensorFeatures feat = TensorFeatures::extract(t, 0);
  const int segments = static_cast<int>(
      t.nnz() / std::max<nnz_t>(1, feat.max_nnz_per_slice / 4));
  ASSERT_GT(segments, 1);
  const SegmentPlan plan = make_segments(t, 0, segments, true);
  bool any_split = false;
  for (const Segment& s : plan.segments) any_split |= !s.slice_aligned;
  EXPECT_TRUE(any_split) << "mega slice was never split";

  // The split plan still computes the right answer end to end.
  const FactorList f = conformance_factors(t, 8, 23);
  const DenseMatrix want = mttkrp_coo_ref(t, f, 0);
  const DenseMatrix got = run_pipeline(t, f, 0, segments, 3);
  EXPECT_LT(DenseMatrix::max_abs_diff(got, want), 2e-3);
}

TEST(SegmentEdges, BudgetPlannerDegeneracies) {
  CooTensor t = make_archetype("uniform", 33, 0);
  t.sort_by_mode(0);
  const index_t rank = 8;
  const std::size_t entry = t.order() * sizeof(index_t) + sizeof(value_t);
  const std::size_t resident = pipeline_resident_bytes(t, 0, rank);
  // Leftover room for just two entries demands one segment per entry,
  // clamped against the int cast instead of wrapping through it.
  const int tiny = segments_for_budget(t, 0, rank, resident + 2 * entry + 1);
  EXPECT_GE(tiny, static_cast<int>(t.nnz() / 2));
  // A huge budget wants exactly one segment.
  EXPECT_EQ(segments_for_budget(t, 0, rank, std::size_t{1} << 40), 1);
  EXPECT_THROW(segments_for_budget(t, 0, rank, 0), Error);
  // Budgets the residents exhaust (or that leave room for fewer than
  // two staged entries) are rejected outright.
  EXPECT_THROW(segments_for_budget(t, 0, rank, resident), Error);
  EXPECT_THROW(segments_for_budget(t, 0, rank, resident + entry), Error);

  // The tiny-budget segment count still yields a valid plan + answer.
  const SegmentPlan plan = make_segments(t, 0, tiny);
  EXPECT_GE(plan.size(), 1u);
  const FactorList f = conformance_factors(t, 4, 2);
  const DenseMatrix want = mttkrp_coo_ref(t, f, 0);
  const DenseMatrix got = run_pipeline(t, f, 0, tiny, 2);
  EXPECT_LT(DenseMatrix::max_abs_diff(got, want), 2e-3);
}

TEST(SegmentEdges, SegmenterRejectsBadArguments) {
  CooTensor sorted = make_archetype("uniform", 3, 0);
  sorted.sort_by_mode(0);
  EXPECT_THROW(make_segments(sorted, 0, 0), Error);
  const CooTensor unsorted = make_archetype("unsorted", 3, 0);
  ASSERT_FALSE(unsorted.is_sorted_by_mode(0));
  EXPECT_THROW(make_segments(unsorted, 0, 2), Error);
}

}  // namespace
}  // namespace scalfrag
