// Segmenter tests: coverage, balance, slice alignment, budget sizing.

#include <gtest/gtest.h>

#include "scalfrag/segmenter.hpp"
#include "tensor/generator.hpp"

namespace scalfrag {
namespace {

void expect_covers(const SegmentPlan& plan, nnz_t nnz) {
  ASSERT_FALSE(plan.segments.empty());
  EXPECT_EQ(plan.segments.front().begin, 0u);
  EXPECT_EQ(plan.segments.back().end, nnz);
  for (std::size_t i = 1; i < plan.segments.size(); ++i) {
    EXPECT_EQ(plan.segments[i].begin, plan.segments[i - 1].end);
  }
}

TEST(Segmenter, CoversWholeTensorContiguously) {
  CooTensor t = make_frostt_tensor("nell-2", 1.0 / 4096, 21);
  for (int k : {1, 2, 4, 8, 16}) {
    const auto plan = make_segments(t, 0, k);
    expect_covers(plan, t.nnz());
    EXPECT_LE(static_cast<int>(plan.size()), k);
  }
}

TEST(Segmenter, BalancedWithinSliceGranularity) {
  CooTensor t = make_frostt_tensor("nell-2", 1.0 / 4096, 22);
  const auto plan = make_segments(t, 0, 4);
  const nnz_t target = (t.nnz() + 3) / 4;
  for (const auto& s : plan.segments) {
    EXPECT_LE(s.nnz(), 2 * target + 1);
  }
  EXPECT_GE(plan.max_nnz(), target);
}

TEST(Segmenter, AlignedCutsFallOnSliceBoundaries) {
  CooTensor t = make_frostt_tensor("uber", 1.0 / 2048, 23);
  const auto plan = make_segments(t, 0, 4, /*align_to_slices=*/true);
  for (std::size_t i = 0; i + 1 < plan.segments.size(); ++i) {
    const auto& s = plan.segments[i];
    if (!s.slice_aligned) continue;
    // Last entry of this segment and first of the next must differ in
    // the mode index.
    EXPECT_NE(t.index(0, s.end - 1), t.index(0, s.end));
  }
}

TEST(Segmenter, HugeSliceGetsSplitAndFlagged) {
  // One slice holds everything → alignment impossible.
  CooTensor t({2, 100000});
  for (index_t j = 0; j < 10000; ++j) t.push({0, j}, 1.0f);
  const auto plan = make_segments(t, 0, 4, /*align_to_slices=*/true);
  EXPECT_GT(plan.size(), 1u);
  bool any_split = false;
  for (const auto& s : plan.segments) any_split |= !s.slice_aligned;
  EXPECT_TRUE(any_split);
  expect_covers(plan, t.nnz());
}

TEST(Segmenter, UnalignedModeCutsExactly) {
  CooTensor t = make_frostt_tensor("uber", 1.0 / 2048, 24);
  const auto plan = make_segments(t, 0, 5, /*align_to_slices=*/false);
  const nnz_t target = (t.nnz() + 4) / 5;
  for (std::size_t i = 0; i + 1 < plan.segments.size(); ++i) {
    EXPECT_EQ(plan.segments[i].nnz(), target);
  }
}

TEST(Segmenter, SliceRangeMetadataIsConsistent) {
  CooTensor t = make_frostt_tensor("nips", 1.0 / 2048, 25);
  const auto plan = make_segments(t, 0, 4);
  for (const auto& s : plan.segments) {
    EXPECT_EQ(s.first_slice, t.index(0, s.begin));
    EXPECT_EQ(s.last_slice, t.index(0, s.end - 1));
    EXPECT_LE(s.first_slice, s.last_slice);
  }
}

TEST(Segmenter, SingleSegmentIsWholeTensor) {
  CooTensor t = make_frostt_tensor("nips", 1.0 / 4096, 26);
  const auto plan = make_segments(t, 0, 1);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan.segments[0].nnz(), t.nnz());
}

TEST(Segmenter, MoreSegmentsThanNnz) {
  CooTensor t({8, 8});
  t.push({0, 0}, 1.0f);
  t.push({3, 1}, 1.0f);
  const auto plan = make_segments(t, 0, 100);
  expect_covers(plan, 2);
  EXPECT_LE(plan.size(), 2u);
}

TEST(Segmenter, EmptyTensorGetsOneEmptySegment) {
  CooTensor t({8, 8});
  const auto plan = make_segments(t, 0, 4);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan.segments[0].nnz(), 0u);
}

TEST(Segmenter, RequiresSortedInput) {
  CooTensor t({4, 4});
  t.push({3, 0}, 1.0f);
  t.push({0, 0}, 1.0f);
  EXPECT_THROW(make_segments(t, 0, 2), Error);
  EXPECT_THROW(make_segments(t, 0, 0), Error);
}

void expect_features_equal(const TensorFeatures& a, const TensorFeatures& b) {
  EXPECT_EQ(a.order, b.order);
  EXPECT_EQ(a.mode, b.mode);
  EXPECT_EQ(a.nnz, b.nnz);
  EXPECT_EQ(a.mode_dim, b.mode_dim);
  EXPECT_EQ(a.num_slices, b.num_slices);
  EXPECT_EQ(a.num_fibers, b.num_fibers);
  EXPECT_EQ(a.max_nnz_per_slice, b.max_nnz_per_slice);
  EXPECT_EQ(a.max_nnz_per_fiber, b.max_nnz_per_fiber);
  // finish() runs the identical double arithmetic both ways, so the
  // derived ratios must match exactly, not just to tolerance.
  EXPECT_EQ(a.slice_ratio, b.slice_ratio);
  EXPECT_EQ(a.fiber_ratio, b.fiber_ratio);
  EXPECT_EQ(a.avg_nnz_per_slice, b.avg_nnz_per_slice);
  EXPECT_EQ(a.avg_nnz_per_fiber, b.avg_nnz_per_fiber);
  EXPECT_EQ(a.cv_nnz_per_slice, b.cv_nnz_per_slice);
  EXPECT_EQ(a.density, b.density);
}

TEST(Segmenter, FusedFeaturesMatchExtractOnMaterializedSegments) {
  for (const char* name : {"nips", "uber", "enron"}) {
    CooTensor t = make_frostt_tensor(name, 1.0 / 2048, 28);
    for (order_t mode : {order_t{0}, order_t{1}}) {
      t.sort_by_mode(mode);
      const auto plan =
          make_segments(t, mode, 5, /*align_to_slices=*/true,
                        /*with_features=*/true);
      ASSERT_EQ(plan.features.size(), plan.size());
      for (std::size_t i = 0; i < plan.size(); ++i) {
        const Segment& seg = plan.segments[i];
        const CooTensor materialized = t.extract(seg.begin, seg.end);
        // extract() computes density against the segment's own dims —
        // identical to the parent's, so the denominators agree.
        const auto standalone = TensorFeatures::extract(materialized, mode);
        expect_features_equal(plan.features[i], standalone);
      }
    }
  }
}

TEST(Segmenter, FeaturesSkippedUnlessRequested) {
  CooTensor t = make_frostt_tensor("nips", 1.0 / 4096, 29);
  EXPECT_TRUE(make_segments(t, 0, 4).features.empty());
  const auto plan = make_segments(t, 0, 4, true, true);
  EXPECT_EQ(plan.features.size(), plan.size());
}

TEST(Segmenter, FusedFeaturesOnEmptyTensor) {
  CooTensor t({8, 8});
  const auto plan = make_segments(t, 0, 4, true, true);
  ASSERT_EQ(plan.features.size(), 1u);
  EXPECT_EQ(plan.features[0].nnz, 0u);
  expect_features_equal(plan.features[0], TensorFeatures::extract(t, 0));
}

TEST(Segmenter, BudgetDerivesSegmentCount) {
  CooTensor t = make_frostt_tensor("nell-2", 1.0 / 4096, 27);
  const index_t rank = 16;
  const std::size_t resident = pipeline_resident_bytes(t, 0, rank);
  // Room for the residents plus the whole COO image => unsegmented.
  EXPECT_EQ(segments_for_budget(t, 0, rank, resident + t.bytes()), 1);
  // Leftover room for 1/8 of the entries => >= 16 segments (the planner
  // halves the target so slice-snapped growth still fits the budget).
  EXPECT_GE(segments_for_budget(t, 0, rank, resident + t.bytes() / 8), 16);
  EXPECT_THROW(segments_for_budget(t, 0, rank, 0), Error);
  // A budget the residents alone exhaust is rejected, not mis-planned:
  // the old dim(0)-only accounting happily returned a count here.
  EXPECT_THROW(segments_for_budget(t, 0, rank, resident), Error);
}

TEST(Segmenter, BudgetFitIsModeAware) {
  // Regression: the planner used to size the output matrix as dim(0)xF
  // regardless of mode and ignored the resident factor matrices, so
  // realized plans overshot the budget (worst for mode != 0, where even
  // the output share was computed against the wrong dimension).
  CooTensor t = make_frostt_tensor("nell-2", 1.0 / 4096, 27);
  const index_t rank = 16;
  const std::size_t entry = t.order() * sizeof(index_t) + sizeof(value_t);
  for (order_t mode = 0; mode < t.order(); ++mode) {
    t.sort_by_mode(mode);
    const std::size_t resident = pipeline_resident_bytes(t, mode, rank);
    const std::size_t budget = resident + t.bytes() / 3;
    const int k = segments_for_budget(t, mode, rank, budget);
    const SegmentPlan plan =
        make_segments(t, mode, k, /*align_to_slices=*/true);
    EXPECT_LE(resident + plan.max_nnz() * entry, budget)
        << "mode " << static_cast<int>(mode) << " plan blows the budget "
        << "(k=" << k << ", max_nnz=" << plan.max_nnz() << ")";
  }
}

}  // namespace
}  // namespace scalfrag
