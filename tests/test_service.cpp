// Multi-tenant decomposition service tests: JobSpec serialization, the
// smooth-WRR JobQueue (fairness + starvation-freedom), DeviceGroup
// leases, admission control against memory budgets, plan-cache hit
// bit-identity, service-vs-direct driver equivalence, and graceful
// drain on shutdown. Lives in scalfrag_par_tests: the service is
// scheduler + worker threads, exactly what the TSAN preset targets.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "service/service.hpp"
#include "tensor/generator.hpp"

namespace scalfrag::service {
namespace {

// Tiny recipes so the whole suite stays in milliseconds of sim prep.
constexpr double kTinyScale = 1.0 / 2048;

JobSpec mttkrp_spec(const std::string& tenant, int weight,
                    const std::string& backend = "coo") {
  JobSpec s;
  s.tenant = tenant;
  s.weight = weight;
  s.kind = JobKind::Mttkrp;
  s.tensor = "nips";
  s.scale = kTinyScale;
  s.mode = 0;
  s.factor_seed = 11;
  s.exec = ExecConfig{}.backend(backend).rank(8);
  return s;
}

TEST(ServiceJobSpec, JsonRoundTrip) {
  JobSpec s;
  s.tenant = "team-a";
  s.weight = 3;
  s.kind = JobKind::Tucker;
  s.tensor = "uber";
  s.scale = 1.0 / 512;
  s.tensor_seed = 99;
  s.mode = 1;
  s.factor_seed = 7;
  s.exec = ExecConfig{}
               .backend("coo_host")
               .rank(12)
               .max_iters(4)
               .tol(0.0)
               .seed(21)
               .nonneg()
               .core_dims({2, 3, 4})
               .segments(5)
               .streams(2)
               .threads(3)
               .memory_budget(1 << 20);

  const JobSpec r = JobSpec::parse(s.to_json());
  EXPECT_EQ(r.tenant, s.tenant);
  EXPECT_EQ(r.weight, s.weight);
  EXPECT_EQ(r.kind, s.kind);
  EXPECT_EQ(r.tensor, s.tensor);
  EXPECT_DOUBLE_EQ(r.scale, s.scale);
  EXPECT_EQ(r.tensor_seed, s.tensor_seed);
  EXPECT_EQ(r.mode, s.mode);
  EXPECT_EQ(r.factor_seed, s.factor_seed);
  EXPECT_EQ(r.exec.backend_name, "coo_host");
  EXPECT_EQ(r.exec.decomp_rank, 12);
  EXPECT_EQ(r.exec.decomp_max_iters, 4);
  EXPECT_DOUBLE_EQ(r.exec.decomp_tol, 0.0);
  EXPECT_EQ(r.exec.decomp_seed, 21u);
  EXPECT_TRUE(r.exec.cpd_nonnegative);
  EXPECT_EQ(r.exec.tucker_core_dims, (std::vector<index_t>{2, 3, 4}));
  EXPECT_EQ(r.exec.num_segments, 5);
  EXPECT_EQ(r.exec.num_streams, 2);
  EXPECT_EQ(r.exec.host_exec.threads, 3u);
  EXPECT_EQ(r.exec.memory_budget_bytes, std::size_t{1} << 20);

  // Absent fields keep defaults; a tol left unset round-trips as the
  // "driver default" sentinel, not as a concrete tolerance.
  const JobSpec d = JobSpec::parse("{\"tensor\": \"nips\"}");
  EXPECT_EQ(d.tenant, "default");
  EXPECT_LT(d.exec.decomp_tol, 0.0);
}

TEST(ServiceJobSpec, ValidateRejectsStructuralErrors) {
  EXPECT_THROW(
      [] {
        JobSpec s;
        s.tenant = "";
        s.validate();
      }(),
      Error);
  EXPECT_THROW(
      [] {
        JobSpec s;
        s.weight = 0;
        s.validate();
      }(),
      Error);
  EXPECT_THROW(
      [] {
        JobSpec s;
        s.kind = JobKind::Tucker;  // no core dims
        s.validate();
      }(),
      Error);
  EXPECT_THROW(job_kind_from_name("hosvd"), Error);
}

// Smooth WRR with weights A=3, B=1 must interleave A A B A (nginx
// schedule), not burst A A A B — and stay FIFO within each tenant.
TEST(ServiceQueue, SmoothWrrInterleavesWeightedTenants) {
  JobQueue q;
  std::uint64_t id = 0;
  for (int i = 0; i < 6; ++i) {
    q.push({++id, mttkrp_spec("a", 3), 0});
  }
  for (int i = 0; i < 2; ++i) {
    q.push({++id, mttkrp_spec("b", 1), 0});
  }
  // Tenant ids: a = 1..6, b = 7..8.
  const std::vector<std::string> want_tenant = {"a", "a", "b", "a",
                                                "a", "a", "b", "a"};
  const std::vector<std::uint64_t> want_id = {1, 2, 7, 3, 4, 5, 8, 6};
  for (std::size_t i = 0; i < want_tenant.size(); ++i) {
    const auto job = q.pop_blocking();
    ASSERT_TRUE(job.has_value());
    EXPECT_EQ(job->spec.tenant, want_tenant[i]) << "dispatch " << i;
    EXPECT_EQ(job->id, want_id[i]) << "dispatch " << i;
  }
  EXPECT_EQ(q.size(), 0u);
}

// Starvation-freedom: under any weights, a tenant with queued work is
// dispatched at least once per sum-of-active-weights pops.
TEST(ServiceQueue, HeavyWeightCannotStarveLightTenant) {
  JobQueue q;
  std::uint64_t id = 0;
  for (int i = 0; i < 20; ++i) {
    q.push({++id, mttkrp_spec("heavy", 10), 0});
  }
  q.push({++id, mttkrp_spec("light", 1), 0});
  // light must appear within the first 11 dispatches (10 + 1).
  bool seen_light = false;
  for (int i = 0; i < 11 && !seen_light; ++i) {
    const auto job = q.pop_blocking();
    ASSERT_TRUE(job.has_value());
    seen_light = job->spec.tenant == "light";
  }
  EXPECT_TRUE(seen_light);
}

TEST(ServiceQueue, CloseDrainsThenSignalsShutdown) {
  JobQueue q;
  q.push({1, mttkrp_spec("a", 1), 0});
  q.push({2, mttkrp_spec("a", 1), 0});
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_THROW(q.push({3, mttkrp_spec("a", 1), 0}), Error);
  EXPECT_TRUE(q.pop_blocking().has_value());
  EXPECT_TRUE(q.pop_blocking().has_value());
  EXPECT_FALSE(q.pop_blocking().has_value());
}

TEST(ServiceDeviceGroup, LeaseBookkeeping) {
  gpusim::DeviceGroup g(gpusim::DeviceSpec::rtx3090(), 2);
  EXPECT_EQ(g.try_lease(), 0);
  EXPECT_EQ(g.try_lease(), 1);
  EXPECT_EQ(g.try_lease(), -1);
  EXPECT_EQ(g.leased(), 2);
  g.release(0);
  EXPECT_EQ(g.try_lease(), 0);
  EXPECT_THROW(g.lease(0), Error);
  g.release(0);
  g.release(1);
  EXPECT_THROW(g.release(1), Error);
  EXPECT_EQ(g.leased(), 0);
}

TEST(ServiceAdmission, RejectsJobsOverTheMemoryBudget) {
  DecompositionService svc({.num_devices = 1});
  JobSpec s = mttkrp_spec("a", 1);
  s.exec.memory_budget(1024);  // nothing fits in 1 KiB
  const JobResult r = svc.wait(svc.submit(s));
  EXPECT_EQ(r.state, JobState::Rejected);
  EXPECT_EQ(r.budget_bytes, 1024u);
  EXPECT_GT(r.predicted_bytes, r.budget_bytes);
  EXPECT_NE(r.error.find("budget"), std::string::npos) << r.error;

  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.rejected, 1u);
  EXPECT_EQ(st.completed, 0u);
  EXPECT_GE(svc.metrics().snapshot().counter("service/admission_rejects"),
            1u);
}

TEST(ServiceAdmission, PerDeviceMemoryFallbackRoutesToFittingMember) {
  // Heterogeneous group, no explicit budget: admission falls back to
  // each member's own memory and the argmin only considers members the
  // job fits on — so a near-zero-memory member is skipped, not fatal.
  gpusim::DeviceSpec tiny = gpusim::DeviceSpec::rtx3090();
  tiny.name = "tiny";
  tiny.global_mem_bytes = 1024;
  ServiceOptions opts;
  opts.device_specs = {tiny, gpusim::DeviceSpec::rtx3090()};
  DecompositionService svc(opts);
  const JobResult r = svc.wait(svc.submit(mttkrp_spec("a", 1)));
  ASSERT_EQ(r.state, JobState::Completed) << r.error;
  EXPECT_EQ(r.device, 1);

  // When no member fits, the job is rejected outright.
  ServiceOptions none;
  none.device_specs = {tiny, tiny};
  DecompositionService cramped(none);
  const JobResult rej = cramped.wait(cramped.submit(mttkrp_spec("a", 1)));
  EXPECT_EQ(rej.state, JobState::Rejected);
  EXPECT_NE(rej.error.find("budget"), std::string::npos) << rej.error;
}

TEST(ServiceScheduling, ArgminWeighsCommittedWorkByThroughput) {
  // A member with a quarter of the cores accrues 4x the committed time
  // per identical job, so a stream of identical jobs splits toward the
  // fast device roughly in proportion to throughput.
  gpusim::DeviceSpec slow = gpusim::DeviceSpec::rtx3090();
  slow.name = "slow";
  slow.cuda_cores /= 4;
  ServiceOptions opts;
  opts.device_specs = {gpusim::DeviceSpec::rtx3090(), slow};
  DecompositionService svc(opts);
  std::vector<JobSpec> specs(10, mttkrp_spec("a", 1));
  const auto results = svc.run_batch(std::move(specs));
  int fast_n = 0;
  int slow_n = 0;
  for (const JobResult& r : results) {
    ASSERT_EQ(r.state, JobState::Completed) << r.error;
    (r.device == 0 ? fast_n : slow_n) += 1;
  }
  EXPECT_GT(fast_n, slow_n);
  EXPECT_GE(slow_n, 1);  // the slow member still shares the load
}

TEST(ServiceAdmission, RejectsPlanlessMttkrpBackends) {
  DecompositionService svc({.num_devices = 1});
  const JobResult r =
      svc.wait(svc.submit(mttkrp_spec("a", 1, "coo_host")));
  EXPECT_EQ(r.state, JobState::Rejected);
  EXPECT_NE(r.error.find("plan"), std::string::npos) << r.error;
}

// The tentpole property: a warm job skips generation, feature
// extraction, selection, and plan construction (prepare_seconds == 0)
// yet produces a bit-identical output, because it replays the very
// plan object the cold run built and executed through.
TEST(ServiceCache, PlanCacheHitIsBitIdenticalToColdRun) {
  DecompositionService svc({.num_devices = 1});
  const auto results =
      svc.run_batch({mttkrp_spec("a", 1), mttkrp_spec("a", 1)});
  ASSERT_EQ(results.size(), 2u);
  const JobResult& cold = results[0];
  const JobResult& warm = results[1];

  ASSERT_EQ(cold.state, JobState::Completed) << cold.error;
  ASSERT_EQ(warm.state, JobState::Completed) << warm.error;
  EXPECT_FALSE(cold.plan_cache_hit);
  EXPECT_TRUE(warm.tensor_cache_hit);
  EXPECT_TRUE(warm.plan_cache_hit);
  EXPECT_GT(cold.prepare_seconds, 0.0);
  EXPECT_EQ(warm.prepare_seconds, 0.0);

  ASSERT_EQ(cold.mttkrp_output.rows(), warm.mttkrp_output.rows());
  ASSERT_EQ(cold.mttkrp_output.cols(), warm.mttkrp_output.cols());
  EXPECT_EQ(std::memcmp(cold.mttkrp_output.data(), warm.mttkrp_output.data(),
                        cold.mttkrp_output.size() * sizeof(value_t)),
            0);
  // Same plan, same factors, same cost model: identical sim time too.
  EXPECT_EQ(cold.sim_cost_ns, warm.sim_cost_ns);

  const ServiceStats st = svc.stats();
  EXPECT_GE(st.cache_hits, 1u);
  EXPECT_GE(st.cache_misses, 1u);
  EXPECT_EQ(svc.cache().plan_entries(), 1u);
  EXPECT_EQ(svc.cache().tensor_entries(), 1u);
}

TEST(ServiceCache, AutoBackendResolvesOnceAndCachesTheChoice) {
  DecompositionService svc({.num_devices = 1});
  const auto results =
      svc.run_batch({mttkrp_spec("a", 1, "auto"), mttkrp_spec("a", 1, "auto")});
  ASSERT_EQ(results.size(), 2u);
  for (const JobResult& r : results) {
    ASSERT_EQ(r.state, JobState::Completed) << r.error;
    EXPECT_TRUE(r.info.auto_selected);
    EXPECT_NE(r.info.backend, "auto");  // resolved to a concrete name
  }
  EXPECT_EQ(results[0].info.backend, results[1].info.backend);
  const auto snap = svc.metrics().snapshot();
  EXPECT_GE(snap.counter("service/choice_cache_hits"), 1u);
  EXPECT_GE(snap.counter("service/choice_cache_misses"), 1u);
}

// Going through the service (queue, admission, cache, lease, replay)
// must not change the numbers: a CPD job equals the direct driver call
// on the same recipe, bit for bit.
TEST(ServiceEquivalence, CpdJobMatchesDirectDriverBitForBit) {
  JobSpec s;
  s.tenant = "a";
  s.kind = JobKind::Cpd;
  s.tensor = "nips";
  s.scale = kTinyScale;
  s.exec = ExecConfig{}.backend("coo").rank(6).max_iters(3);

  DecompositionService svc({.num_devices = 1});
  const JobResult r = svc.wait(svc.submit(s));
  ASSERT_EQ(r.state, JobState::Completed) << r.error;
  ASSERT_TRUE(r.cpd.has_value());

  const CooTensor t = make_frostt_tensor("nips", kTinyScale, 42);
  gpusim::SimDevice dev(gpusim::DeviceSpec::rtx3090());
  const CpdResult direct = cpd_als(t, s.exec, &dev);

  EXPECT_EQ(r.cpd->iterations, direct.iterations);
  EXPECT_DOUBLE_EQ(r.cpd->final_fit, direct.final_fit);
  ASSERT_EQ(r.cpd->factors.size(), direct.factors.size());
  for (std::size_t m = 0; m < direct.factors.size(); ++m) {
    EXPECT_EQ(std::memcmp(r.cpd->factors[m].data(),
                          direct.factors[m].data(),
                          direct.factors[m].size() * sizeof(value_t)),
              0)
        << "factor " << m;
  }
}

TEST(ServiceExecution, TuckerJobAccountsTimeOnTheSharedDevice) {
  JobSpec s;
  s.tenant = "a";
  s.kind = JobKind::Tucker;
  s.tensor = "nips";
  s.scale = kTinyScale;
  s.exec = ExecConfig{}.core_dims({2, 2, 2, 2}).max_iters(2);

  DecompositionService svc({.num_devices = 1});
  const JobResult r = svc.wait(svc.submit(s));
  ASSERT_EQ(r.state, JobState::Completed) << r.error;
  ASSERT_TRUE(r.tucker.has_value());
  EXPECT_GT(r.tucker->final_fit, 0.0);
  EXPECT_EQ(r.device, 0);
  // The shared-device fix: projections are cost-modeled on the leased
  // device instead of a silently-constructed private one.
  EXPECT_GT(r.sim_cost_ns, 0u);
  EXPECT_EQ(svc.stats().makespan_ns, r.sim_finish_ns);
}

// run_batch across two weighted tenants: dispatch order must follow
// the smooth-WRR schedule end to end (not just inside JobQueue), and
// nobody starves.
TEST(ServiceFairness, WeightedBatchDispatchesInWrrOrder) {
  std::vector<JobSpec> specs;
  for (int i = 0; i < 6; ++i) specs.push_back(mttkrp_spec("a", 3));
  for (int i = 0; i < 2; ++i) specs.push_back(mttkrp_spec("b", 1));

  DecompositionService svc({.num_devices = 1});
  const auto results = svc.run_batch(specs);
  ASSERT_EQ(results.size(), specs.size());

  // results are in submission order; recover the dispatch order.
  std::vector<std::string> by_dispatch(results.size());
  for (const JobResult& r : results) {
    ASSERT_EQ(r.state, JobState::Completed) << r.error;
    ASSERT_GE(r.dispatch_seq, 1u);
    ASSERT_LE(r.dispatch_seq, results.size());
    by_dispatch[r.dispatch_seq - 1] = r.spec.tenant;
  }
  const std::vector<std::string> want = {"a", "a", "b", "a",
                                         "a", "a", "b", "a"};
  EXPECT_EQ(by_dispatch, want);
}

TEST(ServiceLifecycle, ShutdownDrainsQueuedJobsGracefully) {
  DecompositionService svc({.num_devices = 2});
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(svc.submit(mttkrp_spec(i % 2 == 0 ? "a" : "b", 1)));
  }
  svc.shutdown();  // graceful: everything queued still executes
  for (const std::uint64_t id : ids) {
    const JobResult r = svc.wait(id);
    EXPECT_TRUE(r.terminal());
    EXPECT_EQ(r.state, JobState::Completed) << r.error;
  }
  EXPECT_EQ(svc.stats().completed, 4u);
  EXPECT_THROW(svc.submit(mttkrp_spec("a", 1)), Error);
  svc.shutdown();  // idempotent
}

TEST(ServiceReport, JsonReportParsesAndCarriesTheSchema) {
  DecompositionService svc({.num_devices = 1});
  svc.run_batch({mttkrp_spec("a", 1)});
  const obs::JsonValue v = obs::JsonValue::parse(svc.report_json());
  EXPECT_EQ(v.at("schema").as_string(), "scalfrag-service");
  EXPECT_EQ(v.at("version").as_number(), 1.0);
  EXPECT_EQ(v.at("jobs").as_array().size(), 1u);
  const obs::JsonValue& job = v.at("jobs").as_array()[0];
  EXPECT_EQ(job.at("state").as_string(), "completed");
  EXPECT_EQ(job.at("spec").at("tenant").as_string(), "a");
  EXPECT_GT(v.at("stats").at("makespan_sim_ns").as_number(), 0.0);
}

}  // namespace
}  // namespace scalfrag::service
