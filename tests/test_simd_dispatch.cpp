// Runtime ISA dispatch self-tests: the SIMD kernel tables
// (src/tensor/simd/) must (a) resolve to something this build/CPU
// supports, (b) produce BIT-identical MTTKRP results across scalar,
// AVX2 and AVX-512 on a rank table covering full-width and masked/
// scalar tails, (c) report the selected kernel and pinning policy in
// the metrics an engine call records, and (d) forward the ExecConfig
// knobs (host_isa_override / host_pinning) into HostExecParams.
//
// The CI release job runs this suite explicitly (`ctest -R
// SimdDispatch`) and the generic-arch job re-runs the full suite with
// SCALFRAG_HOST_ISA=scalar through the portable fallback table.

#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "scalfrag/exec_config.hpp"
#include "tensor/generator.hpp"
#include "tensor/linalg.hpp"
#include "tensor/mode_views.hpp"
#include "tensor/mttkrp_par.hpp"
#include "tensor/simd/microkernels.hpp"

namespace scalfrag {
namespace {

constexpr HostIsa kAllIsas[] = {HostIsa::Scalar, HostIsa::Avx2,
                                HostIsa::Avx512};

FactorList random_factors(const CooTensor& t, index_t rank,
                          std::uint64_t seed) {
  Rng rng(seed);
  FactorList f;
  for (order_t m = 0; m < t.order(); ++m) {
    DenseMatrix a(t.dim(m), rank);
    a.randomize(rng);
    f.push_back(std::move(a));
  }
  return f;
}

CooTensor small_tensor(int order, nnz_t nnz, std::uint64_t seed) {
  GeneratorConfig g;
  for (int m = 0; m < order; ++m) {
    g.dims.push_back(static_cast<index_t>(20 + 9 * m));
    g.skew.push_back(1.0 + 0.3 * m);
  }
  g.nnz = nnz;
  g.seed = seed;
  return generate_coo(g);
}

DenseMatrix run_forced(const CooSpan& t, const FactorList& f, order_t mode,
                       HostIsa isa) {
  HostExecParams opt;
  opt.strategy = HostStrategy::Serial;
  opt.grain_nnz = 1;
  opt.isa = isa;
  return mttkrp_coo_par(t, f, mode, opt);
}

TEST(SimdDispatch, DetectedIsaIsSupportedAndConsistent) {
  const HostIsa isa = detect_host_isa();
  EXPECT_NE(isa, HostIsa::Auto);
  EXPECT_TRUE(host_isa_supported(isa));
  const simd::KernelTable& kt = simd::kernels_for(HostIsa::Auto);
  EXPECT_EQ(kt.isa, isa);
  EXPECT_STREQ(kt.name, host_isa_name(isa));
  EXPECT_EQ(kt.lanes, host_isa_lanes(isa));
  EXPECT_NE(kt.mttkrp_span, nullptr);
  EXPECT_NE(kt.rows_add, nullptr);
  EXPECT_NE(kt.axpy_widen, nullptr);
  EXPECT_NE(kt.mul_inplace, nullptr);
  // The scalar fallback is guaranteed on every build and CPU.
  EXPECT_TRUE(host_isa_supported(HostIsa::Scalar));
  EXPECT_EQ(simd::kernels_for(HostIsa::Scalar).lanes, 1);
}

TEST(SimdDispatch, UnsupportedForcedIsaThrows) {
  EXPECT_THROW(host_isa_from_name("sse9"), Error);
  bool any_unsupported = false;
  for (HostIsa isa : {HostIsa::Avx2, HostIsa::Avx512}) {
    if (!host_isa_supported(isa)) {
      any_unsupported = true;
      EXPECT_THROW(simd::kernels_for(isa), Error);
      HostExecParams opt;
      opt.isa = isa;
      const CooTensor t = small_tensor(3, 50, 1);
      const auto f = random_factors(t, 4, 2);
      EXPECT_THROW(mttkrp_coo_par(t, f, 0, opt), Error);
    }
  }
  if (!any_unsupported) {
    GTEST_SKIP() << "every vector ISA is supported on this machine";
  }
}

// Bit-identity across every supported table, on a rank sweep hitting
// full vector widths and the masked/scalar tails: 1 and 3 (sub-lane),
// 7 (no width divides it), 8 (one AVX2 vector), 63 (full AVX-512 lanes
// + 15-wide tail), 64 (exactly one rank tile), 65 (tile boundary +
// 1-wide tail tile). Contiguous span and gather view both checked.
TEST(SimdDispatch, BitIdenticalAcrossIsasAndTailRanks) {
  CooTensor t = small_tensor(3, 400, 7);
  t.sort_by_mode(0);
  const ModeViews views(t);
  for (const index_t rank : {1, 3, 7, 8, 63, 64, 65}) {
    const auto f = random_factors(t, rank, 100 + rank);
    for (const order_t mode : {order_t{0}, order_t{1}}) {
      const CooSpan view = views.view(mode);
      const DenseMatrix want_flat = run_forced(t, f, mode, HostIsa::Scalar);
      const DenseMatrix want_gather =
          run_forced(view, f, mode, HostIsa::Scalar);
      for (HostIsa isa : {HostIsa::Avx2, HostIsa::Avx512}) {
        if (!host_isa_supported(isa)) continue;
        const DenseMatrix got_flat = run_forced(t, f, mode, isa);
        ASSERT_EQ(std::memcmp(got_flat.data(), want_flat.data(),
                              want_flat.size() * sizeof(value_t)),
                  0)
            << host_isa_name(isa) << " diverges from scalar at rank " << rank
            << " mode " << int(mode) << " (contiguous)";
        const DenseMatrix got_gather = run_forced(view, f, mode, isa);
        ASSERT_EQ(std::memcmp(got_gather.data(), want_gather.data(),
                              want_gather.size() * sizeof(value_t)),
                  0)
            << host_isa_name(isa) << " diverges from scalar at rank " << rank
            << " mode " << int(mode) << " (gather view)";
      }
    }
  }
}

// The flat-array kernels (PrivateReduce reduction, matmul_tn rank-1
// update, hadamard) must also be bit-identical to their scalar loops,
// including non-multiple-of-width tails.
TEST(SimdDispatch, FlatKernelsBitIdentical) {
  Rng rng(13);
  for (const std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{16},
                              std::size_t{33}, std::size_t{130}}) {
    std::vector<value_t> a(n), b(n);
    for (auto& x : a) x = rng.next_float();
    for (auto& x : b) x = rng.next_float();
    for (HostIsa isa : {HostIsa::Avx2, HostIsa::Avx512}) {
      if (!host_isa_supported(isa)) continue;
      const simd::KernelTable& kt = simd::kernels_for(isa);

      std::vector<value_t> want = a, got = a;
      for (std::size_t i = 0; i < n; ++i) want[i] = want[i] + b[i];
      kt.rows_add(got.data(), b.data(), n);
      EXPECT_EQ(std::memcmp(got.data(), want.data(), n * sizeof(value_t)), 0)
          << "rows_add " << host_isa_name(isa) << " n=" << n;

      // Reference from the scalar TABLE, not a raw loop here: this TU
      // may be compiled with FMA contraction, the kernel TUs never are.
      std::vector<double> dwant(n, 0.25), dgot(n, 0.25);
      const double s = 1.5;
      simd::kernels_for(HostIsa::Scalar).axpy_widen(dwant.data(), s, b.data(),
                                                    n);
      kt.axpy_widen(dgot.data(), s, b.data(), n);
      EXPECT_EQ(std::memcmp(dgot.data(), dwant.data(), n * sizeof(double)), 0)
          << "axpy_widen " << host_isa_name(isa) << " n=" << n;

      want = a;
      got = a;
      for (std::size_t i = 0; i < n; ++i) want[i] = want[i] * b[i];
      kt.mul_inplace(got.data(), b.data(), n);
      EXPECT_EQ(std::memcmp(got.data(), want.data(), n * sizeof(value_t)), 0)
          << "mul_inplace " << host_isa_name(isa) << " n=" << n;
    }
  }
}

// Forcing each ISA through the engine must be observable: the metrics
// registry records host/isa/<name> for the table actually used.
TEST(SimdDispatch, ForcedIsaReportedInMetrics) {
  const CooTensor t = small_tensor(3, 300, 21);
  const auto f = random_factors(t, 8, 22);
  for (HostIsa isa : kAllIsas) {
    if (!host_isa_supported(isa)) continue;
    obs::MetricsRegistry reg;
    HostExecParams opt;
    opt.isa = isa;
    opt.metrics = &reg;
    mttkrp_coo_par(t, f, 0, opt);
    EXPECT_EQ(reg.counter(std::string("host/isa/") + host_isa_name(isa)), 1u)
        << host_isa_name(isa);
  }
  // Auto resolves to the detected best and reports THAT name.
  obs::MetricsRegistry reg;
  HostExecParams opt;
  opt.metrics = &reg;
  mttkrp_coo_par(t, f, 0, opt);
  EXPECT_EQ(reg.counter(std::string("host/isa/") +
                        host_isa_name(detect_host_isa())),
            1u);
}

TEST(SimdDispatch, TopologyIsSane) {
  const CpuTopology& topo = cpu_topology();
  EXPECT_GE(topo.logical_cpus, 1);
  EXPECT_GE(topo.numa_nodes, 1);
  EXPECT_EQ(topo.node_of_cpu.size(),
            static_cast<std::size_t>(topo.logical_cpus));
  for (const int node : topo.node_of_cpu) {
    EXPECT_GE(node, 0);
    EXPECT_LT(node, topo.numa_nodes);
  }
}

TEST(SimdDispatch, PinningAppliedAndReported) {
  ThreadPool& pool = ThreadPool::global();
  const CooTensor t = small_tensor(3, 300, 31);
  const auto f = random_factors(t, 8, 32);
  for (const PinPolicy policy : {PinPolicy::Compact, PinPolicy::Scatter}) {
    obs::MetricsRegistry reg;
    HostExecParams opt;
    opt.pinning = policy;
    opt.metrics = &reg;
    const DenseMatrix out = mttkrp_coo_par(t, f, 0, opt);
    EXPECT_EQ(pool.pinning(), policy);
    EXPECT_EQ(reg.counter(std::string("host/pinning/") +
                          pin_policy_name(policy)),
              1u);
    // Pinning must not change results (same kernels, same order).
    const DenseMatrix want = mttkrp_coo_par(t, f, 0, HostExecParams{});
    EXPECT_EQ(std::memcmp(out.data(), want.data(),
                          want.size() * sizeof(value_t)),
              0);
  }
  pool.apply_pinning(PinPolicy::None);  // restore full-machine affinity
  EXPECT_EQ(pool.pinning(), PinPolicy::None);
}

TEST(SimdDispatch, ExecConfigForwardsIsaAndPinning) {
  const ExecConfig cfg = ExecConfig{}
                             .host_isa_override(HostIsa::Scalar)
                             .host_pinning(PinPolicy::Compact)
                             .threads(2);
  const HostExecParams h = cfg.host_for_run();
  EXPECT_EQ(h.isa, HostIsa::Scalar);
  EXPECT_EQ(h.pinning, PinPolicy::Compact);
  EXPECT_EQ(h.threads, 2u);
  // Defaults stay non-forcing.
  EXPECT_EQ(ExecConfig{}.host_for_run().isa, HostIsa::Auto);
  EXPECT_EQ(ExecConfig{}.host_for_run().pinning, PinPolicy::None);
}

// matmul_tn/gram/hadamard now route through the auto table; pin their
// agreement with the scalar table at bit level so the dense CPD-ALS
// hot spots inherit the same cross-ISA reproducibility. The reference
// uses the scalar table's axpy_widen (its TU is built with
// -ffp-contract=off) rather than a raw loop in this TU, which the
// compiler is free to FMA-contract.
TEST(SimdDispatch, LinalgMatchesScalarBitwise) {
  Rng rng(43);
  DenseMatrix a(37, 19), b(37, 11);
  a.randomize(rng);
  b.randomize(rng);
  const DenseMatrix tn = linalg::matmul_tn(a, b);
  // Scalar-table recomputation with the identical double-accumulator
  // order matmul_tn uses internally.
  const simd::KernelTable& sk = simd::kernels_for(HostIsa::Scalar);
  std::vector<double> acc(static_cast<std::size_t>(a.cols()) * b.cols(), 0.0);
  for (index_t k = 0; k < a.rows(); ++k) {
    const value_t* arow = a.row(k);
    const value_t* brow = b.row(k);
    for (index_t i = 0; i < a.cols(); ++i) {
      const double av = arow[i];
      if (av == 0.0) continue;
      sk.axpy_widen(acc.data() + static_cast<std::size_t>(i) * b.cols(), av,
                    brow, b.cols());
    }
  }
  for (index_t i = 0; i < tn.rows(); ++i) {
    for (index_t j = 0; j < tn.cols(); ++j) {
      EXPECT_EQ(tn(i, j),
                static_cast<value_t>(
                    acc[static_cast<std::size_t>(i) * tn.cols() + j]))
          << i << "," << j;
    }
  }
}

}  // namespace
}  // namespace scalfrag
