// SpTTM tests: hand-computed products, brute-force cross-check, and
// semi-sparse structure invariants.

#include <gtest/gtest.h>

#include "tensor/generator.hpp"
#include "tensor/spttm.hpp"

namespace scalfrag {
namespace {

TEST(Spttm, HandComputedMode2Product) {
  // X(0,0,0)=2, X(0,0,1)=3 share a mode-2 fiber;
  // U = [[1,10],[2,20]] → Y(0,0,:) = 2·U(0,:) + 3·U(1,:) = (8, 80).
  CooTensor x({2, 2, 2});
  x.push({0, 0, 0}, 2.0f);
  x.push({0, 0, 1}, 3.0f);
  x.push({1, 1, 0}, 5.0f);
  DenseMatrix u(2, 2);
  u(0, 0) = 1;
  u(0, 1) = 10;
  u(1, 0) = 2;
  u(1, 1) = 20;

  const SemiSparseTensor y = spttm(x, u, 2);
  EXPECT_EQ(y.num_fibers(), 2u);
  EXPECT_EQ(y.dims, (std::vector<index_t>{2, 2, 2}));
  EXPECT_EQ(y.kept_modes, (std::vector<order_t>{0, 1}));

  const index_t c1[3] = {0, 0, 0};
  const index_t c2[3] = {0, 0, 1};
  EXPECT_FLOAT_EQ(y.at(c1), 8.0f);
  EXPECT_FLOAT_EQ(y.at(c2), 80.0f);
  const index_t c3[3] = {1, 1, 0};
  EXPECT_FLOAT_EQ(y.at(c3), 5.0f);  // 5·U(0,0) = 5·1
  const index_t c4[3] = {1, 1, 1};
  EXPECT_FLOAT_EQ(y.at(c4), 50.0f);  // 5·U(0,1) = 5·10
  const index_t missing[3] = {1, 0, 0};
  EXPECT_FLOAT_EQ(y.at(missing), 0.0f);
}

TEST(Spttm, ShapeValidation) {
  CooTensor x({3, 3});
  x.push({0, 0}, 1.0f);
  DenseMatrix u(2, 4);  // wrong row count for either mode
  EXPECT_THROW(spttm(x, u, 0), Error);
  EXPECT_THROW(spttm(x, DenseMatrix(3, 4), 2), Error);  // bad mode
}

TEST(Spttm, RankDimensionReplacesMode) {
  const CooTensor x = make_frostt_tensor("nips", 1.0 / 8192, 211);
  Rng rng(212);
  DenseMatrix u(x.dim(1), 6);
  u.randomize(rng);
  const SemiSparseTensor y = spttm(x, u, 1);
  EXPECT_EQ(y.dims[1], 6u);
  EXPECT_EQ(y.dims[0], x.dim(0));
  EXPECT_EQ(y.values.cols(), 6u);
  EXPECT_EQ(y.mode, 1);
}

TEST(Spttm, MatchesBruteForce) {
  GeneratorConfig g{
      .dims = {12, 10, 8}, .nnz = 300, .skew = {}, .seed = 213};
  const CooTensor x = generate_coo(g);
  Rng rng(214);
  DenseMatrix u(x.dim(2), 5);
  u.randomize(rng);
  const SemiSparseTensor y = spttm(x, u, 2);

  // Brute force: dense accumulation over every (i, j, r).
  std::vector<double> dense(12 * 10 * 5, 0.0);
  for (nnz_t e = 0; e < x.nnz(); ++e) {
    for (index_t r = 0; r < 5; ++r) {
      dense[(x.index(0, e) * 10 + x.index(1, e)) * 5 + r] +=
          static_cast<double>(x.value(e)) * u(x.index(2, e), r);
    }
  }
  for (index_t i = 0; i < 12; ++i) {
    for (index_t j = 0; j < 10; ++j) {
      for (index_t r = 0; r < 5; ++r) {
        const index_t coord[3] = {i, j, r};
        EXPECT_NEAR(y.at(coord), dense[(i * 10 + j) * 5 + r], 1e-3);
      }
    }
  }
}

TEST(Spttm, FiberCountEqualsDistinctKeptCoordinates) {
  const CooTensor x = make_frostt_tensor("uber", 1.0 / 4096, 215);
  Rng rng(216);
  DenseMatrix u(x.dim(0), 4);
  u.randomize(rng);
  const SemiSparseTensor y = spttm(x, u, 0);

  // Count distinct (i1, i2, i3) triples by sorting keys.
  CooTensor s = x;
  s.sort_by_key_order(std::array<order_t, 4>{1, 2, 3, 0});
  nnz_t distinct = 0;
  for (nnz_t e = 0; e < s.nnz(); ++e) {
    bool is_new = e == 0;
    for (order_t m : {1, 2, 3}) {
      if (e > 0 && s.index(static_cast<order_t>(m), e) !=
                       s.index(static_cast<order_t>(m), e - 1)) {
        is_new = true;
      }
    }
    distinct += is_new;
  }
  EXPECT_EQ(y.num_fibers(), distinct);
}

TEST(Spttm, FlopsFormula) {
  CooTensor x({4, 4});
  x.push({0, 0}, 1.0f);
  x.push({1, 1}, 1.0f);
  EXPECT_EQ(spttm_flops(x, 8), 2ull * 2 * 8);
}

TEST(SortByKeyOrder, ValidatesPermutation) {
  CooTensor t({4, 4});
  t.push({0, 0}, 1.0f);
  const std::array<order_t, 2> dup = {0, 0};
  EXPECT_THROW(t.sort_by_key_order(dup), Error);
  const std::array<order_t, 1> incomplete = {0};
  EXPECT_THROW(t.sort_by_key_order(incomplete), Error);
}

}  // namespace
}  // namespace scalfrag
