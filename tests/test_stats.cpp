// Tensor statistics and simulator-metrics tests.

#include <gtest/gtest.h>

#include "gpusim/sim_metrics.hpp"
#include "tensor/generator.hpp"
#include "tensor/stats.hpp"

namespace scalfrag {
namespace {

TEST(SliceDistribution, HandComputedCensus) {
  CooTensor t({4, 16});
  for (index_t j = 0; j < 8; ++j) t.push({0, j}, 1.0f);  // slice 0: 8
  for (index_t j = 0; j < 2; ++j) t.push({1, j}, 1.0f);  // slice 1: 2
  t.push({3, 0}, 1.0f);                                  // slice 3: 1
  const auto d = slice_distribution(t, 0);
  EXPECT_EQ(d.occupied_slices, 3u);
  EXPECT_EQ(d.empty_slices, 1u);
  EXPECT_EQ(d.min, 1u);
  EXPECT_EQ(d.median, 2u);
  EXPECT_EQ(d.max, 8u);
  EXPECT_NEAR(d.mean, 11.0 / 3.0, 1e-12);
  EXPECT_GT(d.gini, 0.2);  // clearly uneven
  EXPECT_NEAR(d.top1pct_share, 8.0 / 11.0, 1e-12);  // top slice of 3
}

TEST(SliceDistribution, UniformSlicesHaveZeroGini) {
  CooTensor t({8, 8});
  for (index_t i = 0; i < 8; ++i) {
    for (index_t j = 0; j < 4; ++j) t.push({i, j}, 1.0f);
  }
  const auto d = slice_distribution(t, 0);
  EXPECT_EQ(d.min, d.max);
  EXPECT_NEAR(d.gini, 0.0, 1e-9);
}

TEST(SliceDistribution, SkewRaisesGini) {
  GeneratorConfig flat{.dims = {256, 64, 64},
                       .nnz = 8000,
                       .skew = {1.0, 1.0, 1.0},
                       .seed = 601};
  GeneratorConfig steep = flat;
  steep.skew = {3.0, 1.0, 1.0};
  const auto d_flat = slice_distribution(generate_coo(flat), 0);
  const auto d_steep = slice_distribution(generate_coo(steep), 0);
  EXPECT_GT(d_steep.gini, d_flat.gini + 0.1);
  EXPECT_GT(d_steep.top1pct_share, d_flat.top1pct_share);
}

TEST(SliceDistribution, EmptyTensor) {
  CooTensor t({5, 5});
  const auto d = slice_distribution(t, 1);
  EXPECT_EQ(d.occupied_slices, 0u);
  EXPECT_EQ(d.empty_slices, 5u);
  EXPECT_DOUBLE_EQ(d.gini, 0.0);
}

TEST(StatsReport, CoversEveryMode) {
  const CooTensor t = make_frostt_tensor("uber", 1.0 / 4096, 602);
  const std::string rep = stats_report(t);
  EXPECT_NE(rep.find("mode 0"), std::string::npos);
  EXPECT_NE(rep.find("mode 3"), std::string::npos);
  EXPECT_NE(rep.find("gini"), std::string::npos);
}

TEST(SimMetrics, UtilizationFractionsAndBandwidth) {
  gpusim::DeviceSpec spec = gpusim::DeviceSpec::rtx3090();
  spec.pcie_latency_us = 0.0;
  gpusim::SimDevice dev(spec);
  // One 24.3 MB copy = exactly 1 ms at 24.3 GB/s; then 1 ms host task.
  const std::size_t bytes = static_cast<std::size_t>(24.3e6);
  dev.memcpy_h2d(0, bytes, nullptr);
  dev.host_task(0, 1'000'000, nullptr);
  const auto r = gpusim::utilization(dev);
  EXPECT_NEAR(r.h2d, 0.5, 1e-3);
  EXPECT_NEAR(r.host, 0.5, 1e-3);
  EXPECT_NEAR(r.h2d_gbps, 24.3, 0.1);
  EXPECT_EQ(r.h2d_bytes, bytes);
  EXPECT_EQ(r.kernel_launches, 0);
  EXPECT_DOUBLE_EQ(r.d2h, 0.0);
}

TEST(SimMetrics, SummaryMentionsAllEngines) {
  gpusim::SimDevice dev(gpusim::DeviceSpec::rtx3090());
  dev.memcpy_h2d(0, 1 << 20, nullptr);
  const std::string s = gpusim::utilization_summary(dev);
  EXPECT_NE(s.find("H2D"), std::string::npos);
  EXPECT_NE(s.find("kernel"), std::string::npos);
  EXPECT_NE(s.find("GB/s"), std::string::npos);
}

TEST(SimMetrics, EmptyTimelineIsAllZero) {
  gpusim::SimDevice dev(gpusim::DeviceSpec::rtx3090());
  const auto r = gpusim::utilization(dev);
  EXPECT_DOUBLE_EQ(r.h2d + r.d2h + r.kernel + r.host, 0.0);
}

}  // namespace
}  // namespace scalfrag
