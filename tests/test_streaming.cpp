// StreamingPlan / "coo_stream" backend tests (suite OutOfCore): the
// out-of-core run is bit-identical to the in-core pipeline, peak
// registered residency respects ExecConfig::memory_budget_bytes, and
// the backend participates in registry validation like any other.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "obs/metrics.hpp"
#include "scalfrag/backend_registry.hpp"
#include "scalfrag/streaming.hpp"
#include "tensor/generator.hpp"
#include "tensor/io_tns.hpp"

namespace scalfrag {
namespace {

CooTensor test_tensor(std::uint64_t seed, nnz_t nnz) {
  GeneratorConfig g{.dims = {32, 48, 24},
                    .nnz = nnz,
                    .skew = {1.4, 1.0, 1.1},
                    .seed = seed};
  return generate_coo(g);  // coalesced → duplicate-free
}

FactorList make_factors(const CooTensor& t, index_t rank,
                        std::uint64_t seed) {
  Rng rng(seed);
  FactorList f;
  for (order_t m = 0; m < t.order(); ++m) {
    DenseMatrix a(t.dim(m), rank);
    a.randomize(rng);
    f.push_back(std::move(a));
  }
  return f;
}

/// Serial host strategy on both sides: per-row accumulation order is
/// then identical in-core and per-chunk, so outputs must memcmp-equal.
ExecConfig base_config() {
  return ExecConfig{}
      .segments(2)
      .streams(2)
      .strategy(HostStrategy::Serial)
      .grain(1)
      .memory_budget(std::size_t{1} << 16);
}

TEST(OutOfCore, StreamBackendBitIdenticalToInCore) {
  const CooTensor t = test_tensor(111, 16000);
  const FactorList f = make_factors(t, 8, 112);
  CooTensor sorted = t;
  for (order_t mode = 0; mode < t.order(); ++mode) {
    sorted.sort_by_mode(mode);
    obs::MetricsRegistry met;
    ExecConfig cfg = base_config();
    cfg.metrics(&met).backend("coo_stream");
    gpusim::SimDevice dev(gpusim::DeviceSpec::rtx3090());
    const DenseMatrix got =
        run_mttkrp_backend(dev, sorted, f, mode, cfg).output;
    // The tiny budget must actually have streamed in pieces.
    EXPECT_GT(met.counter("oocore/chunks"), 1u) << "mode "
                                                << static_cast<int>(mode);
    EXPECT_GT(met.counter("oocore/spill_bytes"), 0u);

    cfg.backend("coo");
    gpusim::SimDevice dev2(gpusim::DeviceSpec::rtx3090());
    const DenseMatrix want =
        run_mttkrp_backend(dev2, sorted, f, mode, cfg).output;
    ASSERT_EQ(got.rows(), want.rows());
    ASSERT_EQ(got.cols(), want.cols());
    EXPECT_EQ(std::memcmp(got.data(), want.data(),
                          got.size() * sizeof(value_t)),
              0)
        << "mode " << static_cast<int>(mode);
  }
}

TEST(OutOfCore, PeakResidencyRespectsBudget) {
  // A sparser box than test_tensor: coalescing in the generator barely
  // shrinks it, so the tensor stays ~4× the budget; every registered
  // holder (window + sort scratch, forming chunk, accumulator) must
  // stay under the budget.
  GeneratorConfig g{.dims = {64, 64, 48},
                    .nnz = 20000,
                    .skew = {1.4, 1.0, 1.1},
                    .seed = 113};
  const CooTensor t = generate_coo(g);
  ASSERT_GE(t.bytes(), std::size_t{4} * (std::size_t{1} << 16));
  const FactorList f = make_factors(t, 8, 114);
  obs::MetricsRegistry met;
  ExecConfig cfg = base_config();
  cfg.metrics(&met);
  gpusim::SimDevice dev(gpusim::DeviceSpec::rtx3090());
  StreamingPlan plan(dev);
  const StreamingResult res = plan.run(t, f, /*mode=*/0, cfg);
  EXPECT_EQ(res.entries, t.nnz());
  EXPECT_GT(res.windows, 1u);
  EXPECT_GT(res.chunks, 1u);
  const double peak =
      met.gauge(std::string(kLoaderResidentGauge) + "_peak");
  EXPECT_GT(peak, 0.0);
  EXPECT_LE(peak, static_cast<double>(cfg.memory_budget_bytes));
  EXPECT_EQ(met.gauge(kLoaderResidentGauge), 0.0);
}

TEST(OutOfCore, RunFileMatchesInCorePipeline) {
  const CooTensor t = test_tensor(115, 8000);
  const FactorList f = make_factors(t, 8, 116);
  const std::string path = ::testing::TempDir() + "scalfrag_stream.tns";
  write_tns_file(path, t);

  ExecConfig cfg = base_config();
  gpusim::SimDevice dev(gpusim::DeviceSpec::rtx3090());
  StreamingPlan plan(dev);
  const StreamingResult res = plan.run_file(path, f, /*mode=*/1, cfg);
  std::remove(path.c_str());
  EXPECT_EQ(res.entries, t.nnz());

  CooTensor sorted = t;
  sorted.sort_by_mode(1);
  cfg.backend("coo");
  gpusim::SimDevice dev2(gpusim::DeviceSpec::rtx3090());
  const DenseMatrix want =
      run_mttkrp_backend(dev2, sorted, f, 1, cfg).output;
  ASSERT_EQ(res.output.rows(), want.rows());
  ASSERT_EQ(res.output.cols(), want.cols());
  EXPECT_EQ(std::memcmp(res.output.data(), want.data(),
                        want.size() * sizeof(value_t)),
            0);
}

TEST(OutOfCore, BackendIsRegisteredAndValidates) {
  EXPECT_TRUE(BackendRegistry::instance().contains("coo_stream"));
  ExecConfig ok = ExecConfig{}.backend("coo_stream");
  EXPECT_NO_THROW(ok.validate());
  // Multi-device execution remains a "coo" feature; the streaming
  // backend must be rejected up front.
  ExecConfig multi = ExecConfig{}.backend("coo_stream").devices(2);
  EXPECT_THROW(multi.validate(), Error);
}

TEST(OutOfCore, FactorSmallerThanDiscoveredDimIsTypedError) {
  const CooTensor t = test_tensor(117, 2000);
  FactorList f = make_factors(t, 4, 118);
  f[0] = DenseMatrix(t.dim(0) - 1, 4);  // too short for the data
  gpusim::SimDevice dev(gpusim::DeviceSpec::rtx3090());
  StreamingPlan plan(dev);
  EXPECT_THROW(plan.run(t, f, 0, base_config()), Error);
}

}  // namespace
}  // namespace scalfrag
