// Chrome trace export tests: structural JSON checks on a known
// timeline.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "gpusim/trace.hpp"

namespace scalfrag::gpusim {
namespace {

SimDevice tiny_run() {
  DeviceSpec spec = DeviceSpec::rtx3090();
  SimDevice dev(spec);
  const StreamId s1 = dev.create_stream();
  dev.memcpy_h2d(s1, 1 << 20, nullptr, "upload \"tensor\"");
  KernelProfile prof;
  prof.work_items = 1024;
  prof.flops = 1 << 16;
  prof.dram_bytes = 1 << 16;
  dev.launch_kernel(s1, {256, 256, 0}, prof, nullptr, "kernel0");
  dev.memcpy_d2h(s1, 4096, nullptr);  // unlabeled: falls back to kind
  return dev;
}

TEST(Trace, EmitsOneEventPerOp) {
  const SimDevice dev = tiny_run();
  std::ostringstream out;
  write_chrome_trace(out, dev);
  const std::string s = out.str();
  std::size_t events = 0;
  for (std::size_t p = s.find("\"ph\": \"X\""); p != std::string::npos;
       p = s.find("\"ph\": \"X\"", p + 1)) {
    ++events;
  }
  EXPECT_EQ(events, dev.timeline().size());
}

TEST(Trace, EscapesLabelsAndNamesEngines) {
  std::ostringstream out;
  write_chrome_trace(out, tiny_run());
  const std::string s = out.str();
  EXPECT_NE(s.find("upload \\\"tensor\\\""), std::string::npos);
  EXPECT_NE(s.find("\"tid\": \"H2D\""), std::string::npos);
  EXPECT_NE(s.find("\"tid\": \"Kernel\""), std::string::npos);
  // Unlabeled op falls back to its kind name.
  EXPECT_NE(s.find("{\"name\": \"D2H\""), std::string::npos);
  // Array-shaped document.
  EXPECT_EQ(s.front(), '[');
  EXPECT_EQ(s[s.size() - 2], ']');
}

TEST(Trace, TimestampsAreMicrosecondsInOrder) {
  const SimDevice dev = tiny_run();
  std::ostringstream out;
  write_chrome_trace(out, dev);
  const std::string s = out.str();
  // First op starts at ts 0; durations are positive.
  EXPECT_NE(s.find("\"ts\": 0"), std::string::npos);
  EXPECT_EQ(s.find("\"dur\": 0,"), std::string::npos);
}

TEST(Trace, FileWriterRoundTrips) {
  const std::string path = ::testing::TempDir() + "scalfrag_trace.json";
  write_chrome_trace_file(path, tiny_run());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("kernel0"), std::string::npos);
  std::remove(path.c_str());
  EXPECT_THROW(write_chrome_trace_file("/nonexistent/x.json", tiny_run()),
               Error);
}

}  // namespace
}  // namespace scalfrag::gpusim
