// Sparse Tucker (HOOI) tests: projection kernel against brute force,
// factor orthonormality, planted-structure recovery, and reconstruction.

#include <gtest/gtest.h>

#include <cmath>

#include "scalfrag/tucker.hpp"
#include "tensor/generator.hpp"
#include "tensor/linalg.hpp"

namespace scalfrag {
namespace {

/// Block tensor with `b` disjoint rank-one blocks (each block's values
/// are an outer product a⊗b⊗c): the whole tensor has multilinear rank
/// exactly (b, b, b), so Tucker with core_dims = (b, b, b) fits ~exactly.
CooTensor block_tensor(index_t blocks, index_t block_len,
                       std::uint64_t seed) {
  Rng rng(seed);
  const index_t dim = blocks * block_len;
  CooTensor t({dim, dim, dim});
  for (index_t b = 0; b < blocks; ++b) {
    std::vector<double> va(block_len), vb(block_len), vc(block_len);
    for (auto* v : {&va, &vb, &vc}) {
      for (auto& x : *v) x = 0.5 + rng.next_double();
    }
    for (index_t i = 0; i < block_len; ++i) {
      for (index_t j = 0; j < block_len; ++j) {
        for (index_t k = 0; k < block_len; ++k) {
          t.push({b * block_len + i, b * block_len + j, b * block_len + k},
                 static_cast<value_t>(va[i] * vb[j] * vc[k]));
        }
      }
    }
  }
  t.sort_by_mode(0);
  return t;
}

void expect_orthonormal(const DenseMatrix& u, double tol = 1e-3) {
  const DenseMatrix g = linalg::gram(u);
  for (index_t i = 0; i < g.rows(); ++i) {
    for (index_t j = 0; j < g.cols(); ++j) {
      EXPECT_NEAR(g(i, j), i == j ? 1.0 : 0.0, tol);
    }
  }
}

TEST(GramSchmidt, ProducesOrthonormalColumns) {
  Rng rng(301);
  DenseMatrix a(20, 5);
  a.randomize(rng);
  linalg::gram_schmidt(a);
  expect_orthonormal(a, 1e-4);
}

TEST(GramSchmidt, RescuesDependentColumns) {
  DenseMatrix a(8, 3);
  for (index_t i = 0; i < 8; ++i) {
    a(i, 0) = 1.0f;
    a(i, 1) = 2.0f;  // dependent on column 0
    a(i, 2) = static_cast<value_t>(i);
  }
  linalg::gram_schmidt(a);
  expect_orthonormal(a, 1e-4);
}

TEST(GramSchmidt, RequiresTallMatrix) {
  DenseMatrix a(2, 5);
  EXPECT_THROW(linalg::gram_schmidt(a), Error);
}

TEST(TtmChain, MatchesBruteForceProjection) {
  GeneratorConfig g{.dims = {10, 8, 6}, .nnz = 200, .skew = {}, .seed = 302};
  const CooTensor x = generate_coo(g);
  Rng rng(303);
  FactorList u;
  const index_t ranks[3] = {3, 2, 4};
  for (order_t m = 0; m < 3; ++m) {
    DenseMatrix f(x.dim(m), ranks[m]);
    f.randomize(rng);
    u.push_back(std::move(f));
  }
  const DenseMatrix w = ttm_chain_all_but(x, u, 1);
  ASSERT_EQ(w.rows(), 8u);
  ASSERT_EQ(w.cols(), 3u * 4u);

  // Brute force: W(i1, r0*4 + r2) = Σ val·U0(i0,r0)·U2(i2,r2).
  for (index_t i1 = 0; i1 < 8; ++i1) {
    for (index_t r0 = 0; r0 < 3; ++r0) {
      for (index_t r2 = 0; r2 < 4; ++r2) {
        double expect = 0.0;
        for (nnz_t e = 0; e < x.nnz(); ++e) {
          if (x.index(1, e) != i1) continue;
          expect += static_cast<double>(x.value(e)) *
                    u[0](x.index(0, e), r0) * u[2](x.index(2, e), r2);
        }
        EXPECT_NEAR(w(i1, r0 * 4 + r2), expect, 1e-3);
      }
    }
  }
}

TEST(Tucker, ValidatesOptions) {
  const CooTensor x = block_tensor(2, 3, 304);
  EXPECT_THROW(tucker_hooi(x, ExecConfig{}), Error);  // missing core dims
  EXPECT_THROW(tucker_hooi(x, ExecConfig{}.core_dims({2, 2})),  // wrong arity
               Error);
  EXPECT_THROW(tucker_hooi(x, ExecConfig{}.core_dims({2, 2, 100})),  // > dim
               Error);
  CooTensor empty({4, 4, 4});
  EXPECT_THROW(tucker_hooi(empty, ExecConfig{}.core_dims({2, 2, 2})), Error);
}

TEST(Tucker, FactorsAreOrthonormal) {
  const CooTensor x = block_tensor(3, 4, 305);
  const TuckerResult res =
      tucker_hooi(x, ExecConfig{}.core_dims({3, 3, 3}).max_iters(6));
  ASSERT_EQ(res.factors.size(), 3u);
  for (const auto& u : res.factors) expect_orthonormal(u);
  EXPECT_EQ(res.core.dims(), (std::vector<index_t>{3, 3, 3}));
}

TEST(Tucker, RecoversPlantedMultilinearRank) {
  const CooTensor x = block_tensor(3, 4, 306);
  const TuckerResult res = tucker_hooi(
      x, ExecConfig{}.core_dims({3, 3, 3}).max_iters(20).tol(1e-8));
  EXPECT_GT(res.final_fit, 0.95);
}

TEST(Tucker, FitImprovesWithCoreSize) {
  GeneratorConfig g{
      .dims = {24, 24, 24}, .nnz = 2000, .skew = {2.0, 2.0, 2.0},
      .seed = 307};
  const CooTensor x = generate_coo(g);
  const auto small = ExecConfig{}.core_dims({2, 2, 2}).max_iters(8);
  const double fit_small = tucker_hooi(x, small).final_fit;
  const double fit_big =
      tucker_hooi(x, ExecConfig{small}.core_dims({8, 8, 8})).final_fit;
  EXPECT_GT(fit_big, fit_small);
}

TEST(Tucker, FitHistoryMostlyIncreases) {
  const CooTensor x = block_tensor(2, 4, 308);
  const TuckerResult res = tucker_hooi(
      x, ExecConfig{}.core_dims({2, 2, 2}).max_iters(10).tol(0.0));
  for (std::size_t i = 1; i < res.fit_history.size(); ++i) {
    EXPECT_GT(res.fit_history[i], res.fit_history[i - 1] - 1e-3);
  }
}

TEST(Tucker, PredictReconstructsPlantedEntries) {
  const CooTensor x = block_tensor(2, 4, 309);
  const TuckerResult res = tucker_hooi(
      x, ExecConfig{}.core_dims({2, 2, 2}).max_iters(20).tol(1e-8));
  double err = 0.0, norm = 0.0;
  for (nnz_t e = 0; e < x.nnz(); e += 7) {
    const index_t coord[3] = {x.index(0, e), x.index(1, e), x.index(2, e)};
    const double p = tucker_predict(res, coord);
    err += (p - x.value(e)) * (p - x.value(e));
    norm += static_cast<double>(x.value(e)) * x.value(e);
  }
  EXPECT_LT(std::sqrt(err / norm), 0.2);
}

TEST(Tucker, PredictValidatesCoordinates) {
  const CooTensor x = block_tensor(2, 3, 310);
  const TuckerResult res =
      tucker_hooi(x, ExecConfig{}.core_dims({2, 2, 2}).max_iters(2));
  const index_t bad[3] = {100, 0, 0};
  EXPECT_THROW(tucker_predict(res, bad), Error);
}

TEST(Tucker, WorksOn4dTensors) {
  Rng rng(311);
  CooTensor x({8, 8, 8, 8});
  for (index_t i = 0; i < 4; ++i) {
    for (index_t j = 0; j < 4; ++j) {
      for (index_t k = 0; k < 4; ++k) {
        for (index_t l = 0; l < 4; ++l) {
          x.push({i, j, k, l}, 0.5f + rng.next_float());
        }
      }
    }
  }
  const TuckerResult res =
      tucker_hooi(x, ExecConfig{}.core_dims({4, 4, 4, 4}).max_iters(10));
  // The dense 4⁴ sub-block lives in a 4-dim subspace per mode, so a
  // (4,4,4,4) core captures it exactly.
  EXPECT_GT(res.final_fit, 0.95);
}

TEST(DenseTensorTest, OffsetsAndNorm) {
  DenseTensor t({2, 3, 4});
  EXPECT_EQ(t.size(), 24u);
  const index_t c1[3] = {0, 0, 0};
  const index_t c2[3] = {1, 2, 3};
  EXPECT_EQ(t.offset(c1), 0u);
  EXPECT_EQ(t.offset(c2), 23u);
  t.at(c2) = 3.0f;
  const index_t c3[3] = {0, 1, 0};
  t.at(c3) = 4.0f;
  EXPECT_NEAR(t.norm(), 5.0, 1e-6);
  const index_t bad[3] = {2, 0, 0};
  EXPECT_THROW(t.offset(bad), Error);
  const index_t short_coord[2] = {0, 0};
  EXPECT_THROW(t.offset(short_coord), Error);
}

}  // namespace
}  // namespace scalfrag
